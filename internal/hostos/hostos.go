// Package hostos models the untrusted host operating system beneath the
// enclave: persistent storage for encrypted filesystem images, futex
// sleep/wake primitives, a loopback network, and untrusted shared memory
// buffers (the channel EIP-based LibOSes use for encrypted IPC).
//
// Everything in this package is OUTSIDE the trust boundary. The LibOS must
// never store plaintext secrets here; the encrypted filesystem (internal/fs)
// and the EIP baseline's encrypted IPC both treat host storage as hostile,
// and tests exercise tamper detection over it.
package hostos

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Host is one untrusted host OS instance.
type Host struct {
	mu        sync.Mutex
	files     map[string][]byte
	crash     map[string]*crashPlan
	futexes   map[uint64]*futexQueue
	listeners map[uint16]*Listener
	shm       map[string][]byte
}

// crashPlan models a host crash during a write sequence: the next
// `remaining` writes to the file land, every write after that is
// silently dropped until HealWrites (the reboot).
type crashPlan struct {
	remaining int
	tripped   bool
}

// New creates an empty host.
func New() *Host {
	return &Host{
		files:     make(map[string][]byte),
		crash:     make(map[string]*crashPlan),
		futexes:   make(map[uint64]*futexQueue),
		listeners: make(map[uint16]*Listener),
		shm:       make(map[string][]byte),
	}
}

// Storage errors.
var (
	// ErrNoFile reports a missing host file.
	ErrNoFile = errors.New("hostos: no such file")
	// ErrPortInUse reports a taken listen port.
	ErrPortInUse = errors.New("hostos: port in use")
	// ErrConnRefused reports dialing a port with no listener.
	ErrConnRefused = errors.New("hostos: connection refused")
	// ErrClosed reports an operation on a closed connection or
	// listener.
	ErrClosed = errors.New("hostos: closed")
)

// WriteFile stores (or replaces) a host file. The host sees — and may
// tamper with — every byte.
func (h *Host) WriteFile(name string, data []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.files[name] = append([]byte(nil), data...)
}

// ReadFile returns a copy of a host file.
func (h *Host) ReadFile(name string) ([]byte, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	data, ok := h.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoFile, name)
	}
	return append([]byte(nil), data...), nil
}

// RemoveFile deletes a host file.
func (h *Host) RemoveFile(name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.files, name)
}

// CrashWrites arms crash-fault injection on a host file: the next n
// WriteFileAt calls still land, then every later write is silently
// dropped — the storage view of a host that loses power partway through
// a sync sequence. HealWrites models the reboot.
func (h *Host) CrashWrites(name string, n int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.crash[name] = &crashPlan{remaining: n}
}

// HealWrites disarms crash-fault injection, reporting whether any write
// was actually dropped.
func (h *Host) HealWrites(name string) (tripped bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p := h.crash[name]
	delete(h.crash, name)
	return p != nil && p.tripped
}

// WriteFileAt overwrites the range [off, off+len(p)) of a host file,
// growing it as needed. This is the block-device write the encrypted
// filesystem uses.
func (h *Host) WriteFileAt(name string, off int, p []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if plan, ok := h.crash[name]; ok {
		if plan.remaining <= 0 {
			plan.tripped = true
			return
		}
		plan.remaining--
	}
	f := h.files[name]
	if need := off + len(p); need > len(f) {
		nf := make([]byte, need)
		copy(nf, f)
		f = nf
	}
	copy(f[off:], p)
	h.files[name] = f
}

// ReadFileAt reads up to len(p) bytes at off, returning the count.
func (h *Host) ReadFileAt(name string, off int, p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	f, ok := h.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoFile, name)
	}
	if off >= len(f) {
		return 0, nil
	}
	return copy(p, f[off:]), nil
}

// FileSize returns the size of a host file (0 if absent).
func (h *Host) FileSize(name string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.files[name])
}

// TamperFile flips a bit in a stored file — a hostile-host action used by
// integrity tests.
func (h *Host) TamperFile(name string, off int) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	f, ok := h.files[name]
	if !ok || off >= len(f) {
		return ErrNoFile
	}
	f[off] ^= 0x80
	return nil
}

// --- Futex ---------------------------------------------------------------

type futexQueue struct {
	waiters []*FutexReg
}

// FutexReg is one registered futex waiter. Exactly one of two things
// happens to a registration: FutexWake pops it and invokes its callback,
// or the owner Cancels it. Cancel after a wake is a harmless no-op.
type FutexReg struct {
	h    *Host
	key  uint64
	wake func()
}

// FutexSubscribe registers wake to be called by a future FutexWake on
// key. This is the asynchronous form of FutexWait used by the M:N
// scheduler: instead of blocking a hart, a SIP registers a callback that
// unparks it. The caller must Cancel the registration if it stops
// waiting for any reason other than being woken (e.g. the SIP is killed
// while parked) — a stale registration would otherwise swallow a wake
// meant for a real waiter.
func (h *Host) FutexSubscribe(key uint64, wake func()) *FutexReg {
	h.mu.Lock()
	defer h.mu.Unlock()
	q := h.futexes[key]
	if q == nil {
		q = &futexQueue{}
		h.futexes[key] = q
	}
	reg := &FutexReg{h: h, key: key, wake: wake}
	q.waiters = append(q.waiters, reg)
	return reg
}

// Cancel removes the registration if it has not been consumed by a wake.
func (r *FutexReg) Cancel() {
	h := r.h
	h.mu.Lock()
	defer h.mu.Unlock()
	q := h.futexes[r.key]
	if q == nil {
		return
	}
	for i, w := range q.waiters {
		if w == r {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			return
		}
	}
}

// FutexWait blocks the caller until a FutexWake on the same key. The LibOS
// uses this to put SGX threads to sleep; the *semantic* correctness of
// user-visible synchronization stays inside the LibOS, as in the paper
// (§6): a spurious or missing host wake can delay a SIP but not corrupt
// LibOS state.
func (h *Host) FutexWait(key uint64) {
	ch := make(chan struct{})
	h.FutexSubscribe(key, func() { close(ch) })
	<-ch
}

// FutexWake wakes up to n waiters on key, returning how many were woken.
// Callbacks run outside the host lock.
func (h *Host) FutexWake(key uint64, n int) int {
	h.mu.Lock()
	q := h.futexes[key]
	var woken []*FutexReg
	if q != nil {
		for len(woken) < n && len(q.waiters) > 0 {
			woken = append(woken, q.waiters[0])
			q.waiters = q.waiters[1:]
		}
	}
	h.mu.Unlock()
	for _, r := range woken {
		r.wake()
	}
	return len(woken)
}

// --- Timers ----------------------------------------------------------------

// Timer schedules fn on the untrusted host clock after d, returning a
// cancel function. Like futex sleeps, timeouts are delegated to the host
// (§6): a malicious host can delay or drop the callback, which can stall
// a poll timeout but never corrupt LibOS state. Cancel after firing is a
// harmless no-op; fn may race a concurrent cancel, so callers must make
// fn idempotent (the parking protocol's latched wakes already are).
func (h *Host) Timer(d time.Duration, fn func()) (cancel func()) {
	t := time.AfterFunc(d, fn)
	return func() { t.Stop() }
}

// --- Untrusted shared memory ----------------------------------------------

// ShmWrite stores a buffer in untrusted shared memory (used by EIP-based
// LibOSes to pass encrypted IPC messages between enclaves).
func (h *Host) ShmWrite(key string, data []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.shm[key] = append([]byte(nil), data...)
}

// ShmRead fetches a buffer from untrusted shared memory.
func (h *Host) ShmRead(key string) ([]byte, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	d, ok := h.shm[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), d...), true
}
