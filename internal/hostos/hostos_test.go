package hostos

import (
	"bytes"
	"io"
	"sync"
	"testing"
)

func TestFileStorage(t *testing.T) {
	h := New()
	h.WriteFile("img", []byte("hello"))
	got, err := h.ReadFile("img")
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if _, err := h.ReadFile("missing"); err == nil {
		t.Fatal("missing file should error")
	}
	h.WriteFileAt("img", 8, []byte("world"))
	if h.FileSize("img") != 13 {
		t.Fatalf("size = %d, want 13", h.FileSize("img"))
	}
	buf := make([]byte, 5)
	n, err := h.ReadFileAt("img", 8, buf)
	if err != nil || n != 5 || string(buf) != "world" {
		t.Fatalf("ReadFileAt = %d %q %v", n, buf, err)
	}
	h.RemoveFile("img")
	if _, err := h.ReadFile("img"); err == nil {
		t.Fatal("removed file should be gone")
	}
}

func TestTamper(t *testing.T) {
	h := New()
	h.WriteFile("f", []byte{1, 2, 3})
	if err := h.FlipBit("f", 1); err != nil {
		t.Fatal(err)
	}
	got, _ := h.ReadFile("f")
	if got[1] == 2 {
		t.Fatal("tamper had no effect")
	}
}

func TestFutex(t *testing.T) {
	h := New()
	const key = 0x1000
	var wg sync.WaitGroup
	woken := make(chan int, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h.FutexWait(key)
			woken <- id
		}(i)
	}
	// Give the waiters a chance to queue (the test is cooperative: wake
	// until all three report).
	total := 0
	for total < 3 {
		total += h.FutexWake(key, 1)
	}
	wg.Wait()
	if len(woken) != 3 {
		t.Fatalf("woken = %d", len(woken))
	}
	if h.FutexWake(key, 10) != 0 {
		t.Fatal("no waiters should remain")
	}
}

func TestNetConnectivity(t *testing.T) {
	h := New()
	l, err := h.Listen(8000)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 4)
		if _, err := io.ReadFull(c, buf); err != nil {
			t.Error(err)
			return
		}
		c.Write(bytes.ToUpper(buf))
		c.Close()
	}()

	c, err := h.Dial(8000)
	if err != nil {
		t.Fatal(err)
	}
	c.Write([]byte("ping"))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "PING" {
		t.Fatalf("echo = %q", buf)
	}
	<-done
}

func TestNetErrors(t *testing.T) {
	h := New()
	if _, err := h.Dial(9999); err != ErrConnRefused {
		t.Fatalf("dial no listener: %v", err)
	}
	l, _ := h.Listen(9000)
	if _, err := h.Listen(9000); err != ErrPortInUse {
		t.Fatalf("double listen: %v", err)
	}
	l.Close()
	if _, err := h.Listen(9000); err != nil {
		t.Fatalf("listen after close: %v", err)
	}
	if _, err := l.Accept(); err != ErrClosed {
		t.Fatalf("accept on closed: %v", err)
	}
}

func TestConnEOFAfterClose(t *testing.T) {
	h := New()
	l, _ := h.Listen(8001)
	defer l.Close()
	go func() {
		c, _ := l.Accept()
		c.Write([]byte("bye"))
		c.Close()
	}()
	c, err := h.Dial(8001)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(connReader{c})
	if err != nil || string(data) != "bye" {
		t.Fatalf("ReadAll = %q, %v", data, err)
	}
}

type connReader struct{ c *Conn }

func (r connReader) Read(p []byte) (int, error) { return r.c.Read(p) }

func TestShm(t *testing.T) {
	h := New()
	h.ShmWrite("msg", []byte{9})
	got, ok := h.ShmRead("msg")
	if !ok || got[0] != 9 {
		t.Fatalf("shm = %v %v", got, ok)
	}
	if _, ok := h.ShmRead("none"); ok {
		t.Fatal("absent shm key should miss")
	}
}
