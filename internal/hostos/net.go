package hostos

import (
	"io"
	"sync"
)

// Conn is one end of an in-memory duplex byte stream, the host-delegated
// TCP connection of the paper's networking model (§6: network I/O is
// redirected to the host and is not secret by default).
type Conn struct {
	rd *stream
	wr *stream
}

// Listener accepts loopback connections on a port.
type Listener struct {
	host *Host
	port uint16

	mu      sync.Mutex
	cond    *sync.Cond
	backlog []*Conn
	// waiters are one-shot wake callbacks registered by parked accepts
	// (the M:N scheduler's non-blocking path). Every arrival and the
	// close wake all of them — the woken tasks retry TryAccept and
	// re-register if they lose the race, so broadcast semantics are
	// correct, if occasionally a thundering herd.
	waiters []func()
	closed  bool
}

// backlogMax bounds queued-but-unaccepted connections, like listen(2)'s
// backlog.
const backlogMax = 128

// Listen binds a loopback port.
func (h *Host) Listen(port uint16) (*Listener, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, taken := h.listeners[port]; taken {
		return nil, ErrPortInUse
	}
	l := &Listener{host: h, port: port}
	l.cond = sync.NewCond(&l.mu)
	h.listeners[port] = l
	return l, nil
}

// Dial connects to a listening loopback port.
func (h *Host) Dial(port uint16) (*Conn, error) {
	h.mu.Lock()
	l := h.listeners[port]
	h.mu.Unlock()
	if l == nil {
		return nil, ErrConnRefused
	}
	a, b := connPair()
	l.mu.Lock()
	if l.closed || len(l.backlog) >= backlogMax {
		l.mu.Unlock()
		return nil, ErrConnRefused
	}
	l.backlog = append(l.backlog, b)
	l.cond.Broadcast()
	waiters := l.waiters
	l.waiters = nil
	l.mu.Unlock()
	for _, w := range waiters {
		w()
	}
	return a, nil
}

// Accept returns the next queued connection, blocking until one arrives or
// the listener closes.
func (l *Listener) Accept() (*Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.backlog) == 0 && !l.closed {
		l.cond.Wait()
	}
	if len(l.backlog) == 0 {
		return nil, ErrClosed
	}
	c := l.backlog[0]
	l.backlog = l.backlog[1:]
	return c, nil
}

// TryAccept is the non-blocking accept for parking callers: it returns a
// queued connection if one is ready; otherwise, when the listener is
// still open, it registers wait (called on the next arrival or close)
// and reports ok=false. Registration and the emptiness check happen
// under one lock, so a wake cannot slip between them.
func (l *Listener) TryAccept(wait func()) (c *Conn, ok, closed bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.backlog) > 0 {
		c = l.backlog[0]
		l.backlog = l.backlog[1:]
		return c, true, false
	}
	if l.closed {
		return nil, false, true
	}
	l.waiters = append(l.waiters, wait)
	return nil, false, false
}

// Close unbinds the port and wakes pending Accepts.
func (l *Listener) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.cond.Broadcast()
	waiters := l.waiters
	l.waiters = nil
	l.mu.Unlock()
	l.host.mu.Lock()
	delete(l.host.listeners, l.port)
	l.host.mu.Unlock()
	for _, w := range waiters {
		w()
	}
}

func connPair() (*Conn, *Conn) {
	s1, s2 := newStream(), newStream()
	return &Conn{rd: s1, wr: s2}, &Conn{rd: s2, wr: s1}
}

// Read reads from the connection, blocking until data or EOF.
func (c *Conn) Read(p []byte) (int, error) { return c.rd.read(p) }

// Write writes to the connection.
func (c *Conn) Write(p []byte) (int, error) { return c.wr.write(p) }

// Close closes both directions.
func (c *Conn) Close() {
	c.rd.closeRead()
	c.wr.closeWrite()
}

// stream is a bounded in-memory byte queue.
type stream struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte
	closed bool
}

const streamCap = 256 << 10

func newStream() *stream {
	s := &stream{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *stream) read(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.buf) == 0 && !s.closed {
		s.cond.Wait()
	}
	if len(s.buf) == 0 {
		return 0, io.EOF
	}
	n := copy(p, s.buf)
	s.buf = s.buf[n:]
	s.cond.Broadcast()
	return n, nil
}

func (s *stream) write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for len(p) > 0 {
		for len(s.buf) >= streamCap && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			return total, io.ErrClosedPipe
		}
		room := streamCap - len(s.buf)
		n := min(room, len(p))
		s.buf = append(s.buf, p[:n]...)
		p = p[n:]
		total += n
		s.cond.Broadcast()
	}
	return total, nil
}

func (s *stream) closeRead()  { s.close() }
func (s *stream) closeWrite() { s.close() }

func (s *stream) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}
