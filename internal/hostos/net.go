package hostos

import (
	"io"
	"sync"

	"repro/internal/ring"
)

// Ready is a readiness bitmask for a stream endpoint, the host-side truth
// that poll/epoll answers are computed from. Bits are level-triggered:
// they describe current state, not edges, so a consumer that re-scans
// after a partial read sees ReadyIn again as long as data remains.
type Ready uint32

// Readiness bits.
const (
	// ReadyIn: a read would not block (buffered data, or EOF/shutdown
	// pending — EOF is readable, as in poll(2)).
	ReadyIn Ready = 1 << iota
	// ReadyOut: a write of at least one byte would not block (buffer
	// space, or a closed direction where the write fails immediately —
	// failing fast is "ready" in poll terms).
	ReadyOut
	// ReadyHup: the peer closed its write direction; reads drain
	// whatever is buffered and then return EOF.
	ReadyHup
	// ReadyErr: the peer closed its read direction; writes fail with
	// ErrClosedPipe (EPIPE).
	ReadyErr
)

// Conn is one end of an in-memory duplex byte stream, the host-delegated
// TCP connection of the paper's networking model (§6: network I/O is
// redirected to the host and is not secret by default).
type Conn struct {
	rd *stream
	wr *stream
}

// watchSet is the persistent readiness-subscription registry shared by
// streams and listeners: id-keyed callbacks that survive wakes until
// cancelled. The owner guards every method with its own lock; snapshot
// results are invoked only after that lock is released (callbacks take
// foreign locks — an epoll set's, the scheduler's).
type watchSet struct {
	m      map[int]func()
	nextID int
}

func (w *watchSet) add(fn func()) (id int) {
	if w.m == nil {
		w.m = make(map[int]func())
	}
	id = w.nextID
	w.nextID++
	w.m[id] = fn
	return id
}

func (w *watchSet) remove(id int) { delete(w.m, id) }

func (w *watchSet) snapshot() []func() {
	if len(w.m) == 0 {
		return nil
	}
	out := make([]func(), 0, len(w.m))
	for _, fn := range w.m {
		out = append(out, fn)
	}
	return out
}

// Listener accepts loopback connections on a port.
type Listener struct {
	host *Host
	port uint16

	mu      sync.Mutex
	cond    *sync.Cond
	backlog []*Conn
	// waiters are one-shot wake callbacks registered by parked accepts
	// (the M:N scheduler's non-blocking path). Every arrival and the
	// close wake all of them — the woken tasks retry TryAccept and
	// re-register if they lose the race, so broadcast semantics are
	// correct, if occasionally a thundering herd.
	waiters []func()
	// watch holds persistent readiness subscriptions (epoll interest):
	// unlike waiters, these survive wakes and fire on every arrival and
	// on close, until cancelled.
	watch  watchSet
	closed bool
	// max bounds queued-but-unaccepted connections, like listen(2)'s
	// backlog: the guest's listen() argument, clamped to BacklogCap.
	max int
}

// Backlog bounds.
const (
	// BacklogDefault applies when the guest never called listen() with
	// an explicit backlog (the seed's old hard-coded limit).
	BacklogDefault = 128
	// BacklogCap is the host's ceiling on any requested backlog, like
	// net.core.somaxconn.
	BacklogCap = 4096
)

// Listen binds a loopback port with the default backlog.
func (h *Host) Listen(port uint16) (*Listener, error) {
	sh := h.listenerShardFor(port)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, taken := sh.m[port]; taken {
		return nil, ErrPortInUse
	}
	l := &Listener{host: h, port: port, max: BacklogDefault}
	l.cond = sync.NewCond(&l.mu)
	sh.m[port] = l
	return l, nil
}

// SetBacklog applies the guest's listen() backlog, clamped to
// [1, BacklogCap]. A dial that finds the queue at the limit fails with
// ErrConnRefused rather than silently waiting — the connector learns
// immediately, which is what the connect-storm tests assert.
func (l *Listener) SetBacklog(n int) {
	if n < 1 {
		n = 1
	}
	if n > BacklogCap {
		n = BacklogCap
	}
	l.mu.Lock()
	l.max = n
	l.mu.Unlock()
}

// Backlog reports the current backlog limit.
func (l *Listener) Backlog() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.max
}

// Dial connects to a listening loopback port.
func (h *Host) Dial(port uint16) (*Conn, error) {
	sh := h.listenerShardFor(port)
	sh.mu.Lock()
	l := sh.m[port]
	sh.mu.Unlock()
	if l == nil {
		return nil, ErrConnRefused
	}
	a, b := connPair()
	l.mu.Lock()
	if l.closed || len(l.backlog) >= l.max {
		l.mu.Unlock()
		return nil, ErrConnRefused
	}
	l.backlog = append(l.backlog, b)
	l.cond.Broadcast()
	waiters := l.waiters
	l.waiters = nil
	watch := l.watch.snapshot()
	l.mu.Unlock()
	for _, w := range waiters {
		w()
	}
	for _, w := range watch {
		w()
	}
	return a, nil
}

// Accept returns the next queued connection, blocking until one arrives or
// the listener closes.
func (l *Listener) Accept() (*Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.backlog) == 0 && !l.closed {
		l.cond.Wait()
	}
	if len(l.backlog) == 0 {
		return nil, ErrClosed
	}
	c := l.backlog[0]
	l.backlog = l.backlog[1:]
	return c, nil
}

// TryAccept is the non-blocking accept for parking callers: it returns a
// queued connection if one is ready; otherwise, when the listener is
// still open, it registers wait (called on the next arrival or close)
// and reports ok=false. Registration and the emptiness check happen
// under one lock, so a wake cannot slip between them. A nil wait makes
// the call purely non-blocking (the O_NONBLOCK accept path).
func (l *Listener) TryAccept(wait func()) (c *Conn, ok, closed bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.backlog) > 0 {
		c = l.backlog[0]
		l.backlog = l.backlog[1:]
		return c, true, false
	}
	if l.closed {
		return nil, false, true
	}
	if wait != nil {
		l.waiters = append(l.waiters, wait)
	}
	return nil, false, false
}

// Readiness reports the listener's poll state: ReadyIn when an accept
// would not block (pending connection, or closed — accept fails fast).
func (l *Listener) Readiness() Ready {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.backlog) > 0 {
		return ReadyIn
	}
	if l.closed {
		return ReadyIn | ReadyHup
	}
	return 0
}

// Subscribe registers a persistent readiness callback, fired on every
// connection arrival and on close. The callback must not call back into
// the listener; it is expected to only flip scheduler state (Unpark).
func (l *Listener) Subscribe(fn func()) (cancel func()) {
	l.mu.Lock()
	id := l.watch.add(fn)
	l.mu.Unlock()
	return func() {
		l.mu.Lock()
		l.watch.remove(id)
		l.mu.Unlock()
	}
}

// Close unbinds the port and wakes pending Accepts.
func (l *Listener) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.cond.Broadcast()
	waiters := l.waiters
	l.waiters = nil
	watch := l.watch.snapshot()
	l.mu.Unlock()
	sh := l.host.listenerShardFor(l.port)
	sh.mu.Lock()
	delete(sh.m, l.port)
	sh.mu.Unlock()
	for _, w := range waiters {
		w()
	}
	for _, w := range watch {
		w()
	}
}

func connPair() (*Conn, *Conn) {
	s1, s2 := newStream(), newStream()
	return &Conn{rd: s1, wr: s2}, &Conn{rd: s2, wr: s1}
}

// Read reads from the connection, blocking until data, EOF, or a local
// shutdown of the read direction.
func (c *Conn) Read(p []byte) (int, error) { return c.rd.read(p) }

// Write writes to the connection, blocking while the peer's receive
// buffer is full.
func (c *Conn) Write(p []byte) (int, error) { return c.wr.write(p) }

// TryRead is the non-blocking read for parking callers: it drains
// buffered data if any, reports eof when the direction is finished, and
// otherwise registers wait (nil for a pure O_NONBLOCK probe) and reports
// wouldBlock.
func (c *Conn) TryRead(p []byte, wait func()) (n int, eof, wouldBlock bool) {
	return c.rd.tryRead(p, wait)
}

// TryWrite appends as much of p as fits in the peer's receive buffer.
// closed reports a dead direction (EPIPE); wouldBlock reports that not
// all of p fit, with wait registered for the next drain (when non-nil).
func (c *Conn) TryWrite(p []byte, wait func()) (n int, closed, wouldBlock bool) {
	return c.wr.tryWrite(p, wait)
}

// CloseRead shuts down the read direction (shutdown(SHUT_RD)): buffered
// data is discarded, future local reads return EOF, and peer writes fail
// with ErrClosedPipe.
func (c *Conn) CloseRead() { c.rd.closeRead() }

// CloseWrite shuts down the write direction (shutdown(SHUT_WR)): the
// peer drains whatever is buffered and then reads EOF; the peer's own
// write direction is untouched — the classic TCP half-close.
func (c *Conn) CloseWrite() { c.wr.closeWrite() }

// Close closes both directions. Data already written remains readable by
// the peer (closeWrite semantics on the outgoing stream); only the
// incoming stream's undelivered data is dropped.
func (c *Conn) Close() {
	c.rd.closeRead()
	c.wr.closeWrite()
}

// BufAlloc reports the bytes of ring buffer actually allocated for
// this end's two directions — the connection's real buffer footprint,
// which lazy rings keep near the high-water mark of queued data rather
// than at 2×StreamCap. Slowloris tests assert this stays bounded.
func (c *Conn) BufAlloc() int {
	c.rd.mu.Lock()
	n := c.rd.rb.Alloc()
	c.rd.mu.Unlock()
	c.wr.mu.Lock()
	n += c.wr.rb.Alloc()
	c.wr.mu.Unlock()
	return n
}

// Readiness reports the connection's poll state.
func (c *Conn) Readiness() Ready {
	var r Ready
	c.rd.mu.Lock()
	if c.rd.rb.Len() > 0 || c.rd.wClosed || c.rd.rClosed {
		r |= ReadyIn
	}
	if c.rd.wClosed {
		r |= ReadyHup
	}
	c.rd.mu.Unlock()
	c.wr.mu.Lock()
	if c.wr.rb.Free() > 0 || c.wr.rClosed || c.wr.wClosed {
		r |= ReadyOut
	}
	if c.wr.rClosed {
		r |= ReadyErr
	}
	c.wr.mu.Unlock()
	return r
}

// Subscribe registers a persistent callback fired on every readiness
// edge in either direction (empty→nonempty for reads, full→space for
// writes, and every close). The callback must not call back into the
// connection.
func (c *Conn) Subscribe(fn func()) (cancel func()) {
	return c.SubscribeDir(true, true, fn)
}

// SubscribeDir is Subscribe restricted to the read and/or write
// direction — an epoll set interested only in EPOLLIN skips every
// write-side drain edge, which is most of the traffic on a busy server.
// Shutdown edges are never filtered: poll/epoll report ERR and HUP
// regardless of the requested mask, and those conditions live on the
// "other" stream (the peer's shutdown(RD) surfaces as ReadyErr on the
// write stream), so the unsubscribed direction still delivers its
// close edges — just not its data edges.
func (c *Conn) SubscribeDir(read, write bool, fn func()) (cancel func()) {
	var cancels []func()
	if read {
		cancels = append(cancels, c.rd.subscribe(fn))
	} else {
		cancels = append(cancels, c.rd.subscribeClose(fn))
	}
	if write {
		cancels = append(cancels, c.wr.subscribe(fn))
	} else {
		cancels = append(cancels, c.wr.subscribeClose(fn))
	}
	return func() {
		for _, cf := range cancels {
			cf()
		}
	}
}

// stream is a bounded in-memory byte queue with independent read-side and
// write-side shutdown, one-shot waiter lists for parked SIPs, and
// persistent watchers for readiness subscriptions (poll/epoll interest).
//
// Storage is a fixed-capacity ring: the cap is a hard per-connection
// memory bound. A slow (or stalled) reader backpressures its writer at
// exactly Cap queued bytes — the append-grown slice this replaces
// regrew without bound and pinned consumed prefixes alive via
// `buf = buf[n:]`, so one slow reader could balloon the host heap.
// The ring allocates its buffer lazily and releases it on a complete
// drain past a keep threshold, so 100k idle connections cost what they
// queue, not 2×Cap each.
type stream struct {
	mu   sync.Mutex
	cond *sync.Cond
	rb   *ring.Ring
	// rClosed: the consuming end shut down (shutdown(RD) or close);
	// buffered data is discarded and writers fail with ErrClosedPipe.
	rClosed bool
	// wClosed: the producing end shut down (shutdown(WR) or close);
	// readers drain the buffer and then see EOF.
	wClosed bool
	// rWait/wWait are one-shot wake callbacks from parked readers and
	// writers; every relevant state change drains and invokes the whole
	// list (broadcast; retriers re-register if still blocked).
	rWait []func()
	wWait []func()
	// watch holds persistent readiness subscriptions; closeWatch holds
	// watchers interested only in this direction's shutdown edges (the
	// cross-direction half of a filtered subscription).
	watch      watchSet
	closeWatch watchSet
}

// streamCap is the per-stream (so per-connection, per-direction) buffer
// cap, like a socket's SO_RCVBUF: the most the ring will ever allocate.
const streamCap = 256 << 10

// StreamCap reports the per-stream buffer cap, the hard bound on bytes
// a connection direction can hold for a slow reader.
func StreamCap() int { return streamCap }

func newStream() *stream {
	s := &stream{rb: ring.New(streamCap)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *stream) subscribe(fn func()) (cancel func()) {
	s.mu.Lock()
	id := s.watch.add(fn)
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		s.watch.remove(id)
		s.mu.Unlock()
	}
}

// subscribeClose registers a watcher fired only by closeRead/closeWrite
// on this stream, never by data edges.
func (s *stream) subscribeClose(fn func()) (cancel func()) {
	s.mu.Lock()
	id := s.closeWatch.add(fn)
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		s.closeWatch.remove(id)
		s.mu.Unlock()
	}
}

// wakeReadersLocked drains the one-shot reader waiters; the caller runs
// the returned callbacks (one-shot and persistent) outside s.mu —
// watcher callbacks take foreign locks (an epoll set's, the
// scheduler's), and the reverse order (epoll scan → Readiness → s.mu)
// would deadlock.
func (s *stream) wakeReadersLocked() []func() {
	s.cond.Broadcast()
	ws := s.rWait
	s.rWait = nil
	return append(ws, s.watch.snapshot()...)
}

func (s *stream) wakeWritersLocked() []func() {
	s.cond.Broadcast()
	ws := s.wWait
	s.wWait = nil
	return append(ws, s.watch.snapshot()...)
}

func runAll(fns []func()) {
	for _, f := range fns {
		f()
	}
}

func (s *stream) read(p []byte) (int, error) {
	s.mu.Lock()
	for s.rb.Len() == 0 && !s.wClosed && !s.rClosed {
		s.cond.Wait()
	}
	if s.rb.Len() == 0 {
		s.mu.Unlock()
		return 0, io.EOF
	}
	wasFull := s.rb.Free() == 0
	n := s.rb.Read(p)
	var wake []func()
	if wasFull && n > 0 {
		wake = s.wakeWritersLocked()
	}
	s.mu.Unlock()
	runAll(wake)
	return n, nil
}

// tryRead is the non-blocking read. With a non-nil wait it registers a
// one-shot waiter under the same critical section as the emptiness
// check, so no write can slip between them unseen. An empty p probes:
// data present returns (0, false, false) — "readable, took nothing".
func (s *stream) tryRead(p []byte, wait func()) (n int, eof, wouldBlock bool) {
	s.mu.Lock()
	if s.rClosed {
		s.mu.Unlock()
		return 0, true, false
	}
	if s.rb.Len() == 0 {
		if s.wClosed {
			s.mu.Unlock()
			return 0, true, false
		}
		if wait != nil {
			s.rWait = append(s.rWait, wait)
		}
		s.mu.Unlock()
		return 0, false, true
	}
	wasFull := s.rb.Free() == 0
	n = s.rb.Read(p)
	var wake []func()
	if wasFull && n > 0 {
		wake = s.wakeWritersLocked()
	}
	s.mu.Unlock()
	runAll(wake)
	return n, false, false
}

func (s *stream) write(p []byte) (int, error) {
	s.mu.Lock()
	total := 0
	for len(p) > 0 {
		for s.rb.Free() == 0 && !s.rClosed && !s.wClosed {
			s.cond.Wait()
		}
		if s.rClosed || s.wClosed {
			s.mu.Unlock()
			return total, io.ErrClosedPipe
		}
		wasEmpty := s.rb.Len() == 0
		n := s.rb.Write(p)
		p = p[n:]
		total += n
		var wake []func()
		if wasEmpty {
			wake = s.wakeReadersLocked()
		}
		s.mu.Unlock()
		runAll(wake)
		s.mu.Lock()
	}
	s.mu.Unlock()
	return total, nil
}

// tryWrite queues what fits. If anything is left over it registers wait
// (when non-nil) and reports wouldBlock; the parked caller resumes from
// its recorded progress, so no byte is sent twice. An empty p probes
// writability: a full ring registers wait and reports wouldBlock, space
// reports (0, false, false) — the splice path uses this to park on the
// socket side without lending it any bytes yet.
func (s *stream) tryWrite(p []byte, wait func()) (n int, closed, wouldBlock bool) {
	s.mu.Lock()
	if s.rClosed || s.wClosed {
		s.mu.Unlock()
		return 0, true, false
	}
	if len(p) == 0 {
		if s.rb.Free() == 0 {
			if wait != nil {
				s.wWait = append(s.wWait, wait)
			}
			s.mu.Unlock()
			return 0, false, true
		}
		s.mu.Unlock()
		return 0, false, false
	}
	var wake []func()
	wasEmpty := s.rb.Len() == 0
	n = s.rb.Write(p)
	if n > 0 && wasEmpty {
		wake = s.wakeReadersLocked()
	}
	if n < len(p) {
		if wait != nil {
			s.wWait = append(s.wWait, wait)
		}
		wouldBlock = true
	}
	s.mu.Unlock()
	runAll(wake)
	return n, false, wouldBlock
}

// closeRead is the consuming end's shutdown: pending data can never be
// delivered, so it is dropped, and both sides are woken (readers to see
// EOF, writers to fail with ErrClosedPipe).
func (s *stream) closeRead() {
	s.mu.Lock()
	s.rClosed = true
	s.rb.Consume(s.rb.Len())
	wake := append(s.wakeReadersLocked(), s.wakeWritersLocked()...)
	wake = append(wake, s.closeWatch.snapshot()...)
	s.mu.Unlock()
	runAll(wake)
}

// closeWrite is the producing end's shutdown: buffered data stays
// readable; once drained, readers see EOF.
func (s *stream) closeWrite() {
	s.mu.Lock()
	s.wClosed = true
	wake := append(s.wakeReadersLocked(), s.wakeWritersLocked()...)
	wake = append(wake, s.closeWatch.snapshot()...)
	s.mu.Unlock()
	runAll(wake)
}
