package hostos

import (
	"io"
	"sync"
)

// Conn is one end of an in-memory duplex byte stream, the host-delegated
// TCP connection of the paper's networking model (§6: network I/O is
// redirected to the host and is not secret by default).
type Conn struct {
	rd *stream
	wr *stream
}

// Listener accepts loopback connections on a port.
type Listener struct {
	host   *Host
	port   uint16
	mu     sync.Mutex
	queue  chan *Conn
	closed bool
}

// Listen binds a loopback port.
func (h *Host) Listen(port uint16) (*Listener, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, taken := h.listeners[port]; taken {
		return nil, ErrPortInUse
	}
	l := &Listener{host: h, port: port, queue: make(chan *Conn, 128)}
	h.listeners[port] = l
	return l, nil
}

// Dial connects to a listening loopback port.
func (h *Host) Dial(port uint16) (*Conn, error) {
	h.mu.Lock()
	l := h.listeners[port]
	h.mu.Unlock()
	if l == nil {
		return nil, ErrConnRefused
	}
	a, b := connPair()
	l.mu.Lock()
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return nil, ErrConnRefused
	}
	select {
	case l.queue <- b:
		return a, nil
	default:
		return nil, ErrConnRefused // backlog full
	}
}

// Accept returns the next queued connection, blocking until one arrives or
// the listener closes.
func (l *Listener) Accept() (*Conn, error) {
	c, ok := <-l.queue
	if !ok {
		return nil, ErrClosed
	}
	return c, nil
}

// Close unbinds the port and wakes pending Accepts.
func (l *Listener) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.mu.Unlock()
	l.host.mu.Lock()
	delete(l.host.listeners, l.port)
	l.host.mu.Unlock()
	close(l.queue)
}

func connPair() (*Conn, *Conn) {
	s1, s2 := newStream(), newStream()
	return &Conn{rd: s1, wr: s2}, &Conn{rd: s2, wr: s1}
}

// Read reads from the connection, blocking until data or EOF.
func (c *Conn) Read(p []byte) (int, error) { return c.rd.read(p) }

// Write writes to the connection.
func (c *Conn) Write(p []byte) (int, error) { return c.wr.write(p) }

// Close closes both directions.
func (c *Conn) Close() {
	c.rd.closeRead()
	c.wr.closeWrite()
}

// stream is a bounded in-memory byte queue.
type stream struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte
	closed bool
}

const streamCap = 256 << 10

func newStream() *stream {
	s := &stream{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *stream) read(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.buf) == 0 && !s.closed {
		s.cond.Wait()
	}
	if len(s.buf) == 0 {
		return 0, io.EOF
	}
	n := copy(p, s.buf)
	s.buf = s.buf[n:]
	s.cond.Broadcast()
	return n, nil
}

func (s *stream) write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for len(p) > 0 {
		for len(s.buf) >= streamCap && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			return total, io.ErrClosedPipe
		}
		room := streamCap - len(s.buf)
		n := min(room, len(p))
		s.buf = append(s.buf, p[:n]...)
		p = p[n:]
		total += n
		s.cond.Broadcast()
	}
	return total, nil
}

func (s *stream) closeRead()  { s.close() }
func (s *stream) closeWrite() { s.close() }

func (s *stream) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}
