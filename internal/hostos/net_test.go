package hostos

import (
	"bytes"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func pair(t *testing.T, h *Host, port uint16) (client, server *Conn) {
	t.Helper()
	l, err := h.Listen(port)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- nil
			return
		}
		done <- c
	}()
	client, err = h.Dial(port)
	if err != nil {
		t.Fatal(err)
	}
	server = <-done
	if server == nil {
		t.Fatal("accept failed")
	}
	l.Close()
	return client, server
}

// TestHalfCloseWriteDrain is the shutdown(WR) regression test: after the
// writer half-closes, the reader drains every buffered byte before
// seeing EOF, and the reverse direction keeps working — the classic TCP
// half-close the seed's single close flag could not express (closing one
// end killed the peer's in-flight data with ErrClosedPipe).
func TestHalfCloseWriteDrain(t *testing.T) {
	client, server := pair(t, New(), 70)

	msg := bytes.Repeat([]byte("abcdefgh"), 512)
	if _, err := server.Write(msg); err != nil {
		t.Fatal(err)
	}
	server.CloseWrite()

	// The reader must drain all 4 KB and then get a clean EOF.
	got, err := io.ReadAll(connReader{client})
	if err != nil {
		t.Fatalf("drain after CloseWrite: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("drained %d bytes, want %d", len(got), len(msg))
	}

	// The reverse direction is untouched: the client can still talk and
	// the server can still listen.
	if _, err := client.Write([]byte("still here")); err != nil {
		t.Fatalf("write after peer CloseWrite: %v", err)
	}
	buf := make([]byte, 16)
	n, err := server.Read(buf)
	if err != nil || string(buf[:n]) != "still here" {
		t.Fatalf("server read after CloseWrite = %q, %v", buf[:n], err)
	}
	client.Close()
	server.Close()
}

// TestCloseLetsPeerDrain: a full Close on one end still lets the peer
// read everything written before the close.
func TestCloseLetsPeerDrain(t *testing.T) {
	client, server := pair(t, New(), 71)
	if _, err := server.Write([]byte("parting gift")); err != nil {
		t.Fatal(err)
	}
	server.Close()
	got, err := io.ReadAll(connReader{client})
	if err != nil || string(got) != "parting gift" {
		t.Fatalf("drain after Close = %q, %v", got, err)
	}
	client.Close()
}

// TestCloseReadBreaksPeerWrite: shutdown(RD) makes the peer's writes
// fail with ErrClosedPipe — including a write already parked on a full
// buffer, which must be woken with the error rather than sleep forever.
func TestCloseReadBreaksPeerWrite(t *testing.T) {
	client, server := pair(t, New(), 72)

	errCh := make(chan error, 1)
	go func() {
		// Larger than the 256 KB stream cap: blocks mid-write.
		_, err := server.Write(make([]byte, streamCap+4096))
		errCh <- err
	}()
	// Wait until the writer has actually filled the buffer and parked.
	for client.Readiness()&ReadyIn == 0 {
		time.Sleep(time.Millisecond)
	}
	client.CloseRead()
	select {
	case err := <-errCh:
		if err != io.ErrClosedPipe {
			t.Fatalf("parked write after CloseRead: err = %v, want ErrClosedPipe", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("parked write never woke after CloseRead")
	}
	// Fresh writes fail immediately too.
	if _, err := server.Write([]byte("x")); err != io.ErrClosedPipe {
		t.Fatalf("write after peer CloseRead: err = %v", err)
	}
	client.Close()
	server.Close()
}

// TestConnReadiness walks the level-triggered readiness state machine.
func TestConnReadiness(t *testing.T) {
	client, server := pair(t, New(), 73)

	if r := client.Readiness(); r != ReadyOut {
		t.Fatalf("fresh conn readiness = %b, want ReadyOut", r)
	}
	server.Write([]byte("ping"))
	if r := client.Readiness(); r&ReadyIn == 0 {
		t.Fatalf("readiness after peer write = %b, want ReadyIn set", r)
	}
	buf := make([]byte, 2)
	client.Read(buf) // partial read: data remains
	if r := client.Readiness(); r&ReadyIn == 0 {
		t.Fatalf("readiness after partial read = %b, want ReadyIn still set (level-triggered)", r)
	}
	client.Read(buf) // drain
	if r := client.Readiness(); r&ReadyIn != 0 {
		t.Fatalf("readiness after drain = %b, want ReadyIn clear", r)
	}
	server.CloseWrite()
	if r := client.Readiness(); r&(ReadyIn|ReadyHup) != ReadyIn|ReadyHup {
		t.Fatalf("readiness after peer CloseWrite = %b, want ReadyIn|ReadyHup", r)
	}
	server.CloseRead()
	if r := client.Readiness(); r&ReadyErr == 0 {
		t.Fatalf("readiness after peer CloseRead = %b, want ReadyErr", r)
	}
	client.Close()
}

// TestSubscribeNotify: persistent subscriptions fire on every
// empty→nonempty readability edge (not on writes into an already
// non-empty buffer — edges, not levels) until cancelled.
func TestSubscribeNotify(t *testing.T) {
	client, server := pair(t, New(), 74)
	var mu sync.Mutex
	fired := 0
	cancel := client.Subscribe(func() {
		mu.Lock()
		fired++
		mu.Unlock()
	})
	count := func() int { mu.Lock(); defer mu.Unlock(); return fired }

	server.Write([]byte("a"))
	after1 := count()
	if after1 == 0 {
		t.Fatal("subscription did not fire on empty→nonempty edge")
	}
	server.Write([]byte("b")) // buffer already non-empty: no new edge
	if count() != after1 {
		t.Fatal("subscription fired without a readiness edge")
	}
	buf := make([]byte, 8)
	client.Read(buf) // drain both bytes
	server.Write([]byte("c"))
	after2 := count()
	if after2 <= after1 {
		t.Fatal("subscription consumed by first wake (must be persistent)")
	}
	cancel()
	client.Read(buf)
	server.Write([]byte("d"))
	if count() != after2 {
		t.Fatal("cancelled subscription still firing")
	}
	client.Close()
	server.Close()
}

// TestListenerReadiness: a pending connection makes the listener
// readable and fires its subscriptions.
func TestListenerReadiness(t *testing.T) {
	h := New()
	l, err := h.Listen(75)
	if err != nil {
		t.Fatal(err)
	}
	if r := l.Readiness(); r != 0 {
		t.Fatalf("idle listener readiness = %b, want 0", r)
	}
	notified := make(chan struct{}, 8)
	cancel := l.Subscribe(func() {
		select {
		case notified <- struct{}{}:
		default:
		}
	})
	defer cancel()
	c, err := h.Dial(75)
	if err != nil {
		t.Fatal(err)
	}
	if r := l.Readiness(); r&ReadyIn == 0 {
		t.Fatalf("listener with pending accept: readiness = %b, want ReadyIn", r)
	}
	select {
	case <-notified:
	case <-time.After(5 * time.Second):
		t.Fatal("listener subscription never fired on arrival")
	}
	if conn, ok, _ := l.TryAccept(nil); !ok {
		t.Fatal("TryAccept found nothing despite ReadyIn")
	} else {
		conn.Close()
	}
	c.Close()
	l.Close()
	if r := l.Readiness(); r&(ReadyIn|ReadyHup) != ReadyIn|ReadyHup {
		t.Fatalf("closed listener readiness = %b, want ReadyIn|ReadyHup", r)
	}
}

// pollRead emulates a poll(timeout)+read loop over the readiness API:
// subscribe, probe with a nonblocking TryRead, and wait for either an
// edge or the timeout before retrying. Exercises the same
// subscribe-then-scan ordering the LibOS poll handler uses.
func pollRead(c *Conn, p []byte, timeout time.Duration) (int, bool) {
	for {
		ch := make(chan struct{}, 1)
		cancel := c.Subscribe(func() {
			select {
			case ch <- struct{}{}:
			default:
			}
		})
		n, eof, wouldBlock := c.TryRead(p, nil)
		if !wouldBlock {
			cancel()
			return n, eof
		}
		select {
		case <-ch:
		case <-time.After(timeout):
		}
		cancel()
	}
}

// TestRandomNetStress is the randomized interleaving stress: N clients
// across M echo servers, mixing blocking reads, poll-style reads with
// random timeouts, random chunk sizes, random yields, half-closes and
// closes. Every well-behaved client must get its bytes echoed back
// exactly; the deadline catches lost wakeups. CI runs the package under
// -race, which turns this into the readiness layer's data-race probe.
func TestRandomNetStress(t *testing.T) {
	const (
		servers    = 4
		clients    = 24
		maxChunks  = 20
		basePort   = 7600
		abortEvery = 5 // every 5th client closes abruptly mid-stream
	)
	h := New()

	var wg sync.WaitGroup
	for s := 0; s < servers; s++ {
		l, err := h.Listen(uint16(basePort + s))
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		wg.Add(1)
		go func(l *Listener) {
			defer wg.Done()
			for {
				conn, err := l.Accept()
				if err != nil {
					return // listener closed: shutting down
				}
				wg.Add(1)
				go func(c *Conn) {
					defer wg.Done()
					// Echo until EOF, then half-close so the client
					// can drain, and fully close once done.
					buf := make([]byte, 700)
					for {
						n, err := c.Read(buf)
						if n > 0 {
							if _, werr := c.Write(buf[:n]); werr != nil {
								break
							}
						}
						if err != nil {
							break
						}
					}
					c.CloseWrite()
					c.Close()
				}(conn)
			}
		}(l)
	}

	errCh := make(chan error, clients)
	var cwg sync.WaitGroup
	for i := 0; i < clients; i++ {
		cwg.Add(1)
		go func(i int) {
			defer cwg.Done()
			rng := rand.New(rand.NewSource(int64(i)*7919 + 13))
			port := uint16(basePort + rng.Intn(servers))
			conn, err := h.Dial(port)
			if err != nil {
				errCh <- err
				return
			}
			abort := i%abortEvery == abortEvery-1
			var sent, recvd bytes.Buffer
			rbuf := make([]byte, 600)
			chunks := 1 + rng.Intn(maxChunks)
			for c := 0; c < chunks; c++ {
				chunk := make([]byte, 1+rng.Intn(900))
				for j := range chunk {
					chunk[j] = byte(rng.Intn(256))
				}
				if _, err := conn.Write(chunk); err != nil {
					errCh <- err
					return
				}
				sent.Write(chunk)
				if abort && c == chunks/2 {
					conn.Close() // abrupt: no totals asserted
					return
				}
				// Randomly interleave reads: blocking or poll-style
				// with a random (possibly expiring) timeout.
				if rng.Intn(2) == 0 {
					var n int
					var eof bool
					if rng.Intn(2) == 0 {
						n, err = conn.Read(rbuf)
						eof = err == io.EOF
					} else {
						n, eof = pollRead(conn, rbuf, time.Duration(1+rng.Intn(3))*time.Millisecond)
					}
					if eof {
						break
					}
					recvd.Write(rbuf[:n])
				}
			}
			// Half-close our direction, then drain the rest of the echo.
			conn.CloseWrite()
			for recvd.Len() < sent.Len() {
				n, eof := pollRead(conn, rbuf, time.Duration(1+rng.Intn(3))*time.Millisecond)
				recvd.Write(rbuf[:n])
				if eof {
					break
				}
			}
			conn.Close()
			if !bytes.Equal(sent.Bytes(), recvd.Bytes()) {
				t.Errorf("client %d: echo mismatch: sent %d bytes, got %d", i, sent.Len(), recvd.Len())
			}
		}(i)
	}

	done := make(chan struct{})
	go func() { cwg.Wait(); close(done) }()
	select {
	case <-done:
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(60 * time.Second):
		t.Fatal("stress did not converge: lost wakeup?")
	}
}

// TestSlowReaderBoundedMemory is the per-connection memory-cap
// regression test: a writer racing far ahead of a slow reader is
// backpressured at exactly StreamCap queued bytes per direction — the
// ring is the connection's whole buffer, allocated once — instead of
// ballooning the host heap the way the old append-grown stream slice
// could. Byte integrity across the wrap-around is checked end to end.
func TestSlowReaderBoundedMemory(t *testing.T) {
	client, server := pair(t, New(), 71)

	// With the reader stalled, a flood is accepted up to the cap and
	// not a byte more.
	pattern := func(i int) byte { return byte(i*7 + 3) }
	total := 0
	chunk := make([]byte, 8<<10)
	for {
		for i := range chunk {
			chunk[i] = pattern(total + i)
		}
		n, closed, wouldBlock := client.TryWrite(chunk, nil)
		if closed {
			t.Fatal("connection closed")
		}
		total += n
		if wouldBlock {
			break
		}
	}
	if total != StreamCap() {
		t.Fatalf("stalled reader absorbed %d bytes, cap is %d", total, StreamCap())
	}
	if n, _, _ := client.TryWrite([]byte{1}, nil); n != 0 {
		t.Fatal("write beyond cap accepted")
	}
	if server.Readiness()&ReadyOut == 0 {
		t.Fatal("server direction should be unaffected")
	}

	// The slow reader drains in dribbles while the writer refills; the
	// stream stays at ≤ cap throughout and every byte arrives in order.
	const goal = 4 << 20
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sent := total
		for sent < goal {
			for i := range chunk {
				chunk[i] = pattern(sent + i)
			}
			n, err := client.Write(chunk[:min(len(chunk), goal-sent)])
			sent += n
			if err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
		client.CloseWrite()
	}()
	got := 0
	buf := make([]byte, 3001) // odd size: exercises ring wrap alignment
	for {
		n, err := server.Read(buf)
		for i := 0; i < n; i++ {
			if buf[i] != pattern(got+i) {
				t.Fatalf("byte %d corrupted under backpressure", got+i)
			}
		}
		got += n
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got != goal {
		t.Fatalf("delivered %d of %d bytes", got, goal)
	}
}

// TestListenerBacklog checks that the guest's listen() backlog governs
// how many undialed connections queue: dials up to the limit succeed,
// the next is refused immediately (not silently dropped), and draining
// one slot readmits one dial. Run for a small and a large backlog —
// the storm at both sizes is the regression for the seed's hard-coded
// 128.
func TestListenerBacklog(t *testing.T) {
	for _, bl := range []int{4, 256} {
		h := New()
		l, err := h.Listen(80)
		if err != nil {
			t.Fatal(err)
		}
		l.SetBacklog(bl)
		if got := l.Backlog(); got != bl {
			t.Fatalf("backlog = %d, want %d", got, bl)
		}
		for i := 0; i < bl; i++ {
			if _, err := h.Dial(80); err != nil {
				t.Fatalf("backlog %d: dial %d refused early: %v", bl, i, err)
			}
		}
		if _, err := h.Dial(80); err != ErrConnRefused {
			t.Fatalf("backlog %d: overflow dial err = %v, want ErrConnRefused", bl, err)
		}
		if c, ok, _ := l.TryAccept(nil); !ok || c == nil {
			t.Fatalf("backlog %d: accept from full queue failed", bl)
		}
		if _, err := h.Dial(80); err != nil {
			t.Fatalf("backlog %d: dial after drain refused: %v", bl, err)
		}
		l.Close()
	}
}

// TestSetBacklogClamps checks the host ceiling and floor.
func TestSetBacklogClamps(t *testing.T) {
	h := New()
	l, err := h.Listen(81)
	if err != nil {
		t.Fatal(err)
	}
	if l.Backlog() != BacklogDefault {
		t.Fatalf("default backlog = %d", l.Backlog())
	}
	l.SetBacklog(1 << 20)
	if l.Backlog() != BacklogCap {
		t.Fatalf("clamped backlog = %d, want %d", l.Backlog(), BacklogCap)
	}
	l.SetBacklog(0)
	if l.Backlog() != 1 {
		t.Fatalf("floor backlog = %d, want 1", l.Backlog())
	}
	l.Close()
}

// TestActiveTimers checks the armed-timer accounting: arming counts,
// firing and cancelling uncount, and a cancel racing a fire never
// double-decrements.
func TestActiveTimers(t *testing.T) {
	h := New()
	fired := make(chan struct{})
	cancel := h.Timer(time.Hour, func() { close(fired) })
	if n := h.ActiveTimers(); n != 1 {
		t.Fatalf("armed count = %d", n)
	}
	cancel()
	if n := h.ActiveTimers(); n != 0 {
		t.Fatalf("after cancel count = %d", n)
	}
	cancel() // double cancel must not go negative
	if n := h.ActiveTimers(); n != 0 {
		t.Fatalf("after double cancel count = %d", n)
	}
	h.Timer(time.Millisecond, func() { fired <- struct{}{} })
	<-fired
	if n := h.ActiveTimers(); n != 0 {
		t.Fatalf("after fire count = %d", n)
	}
}

// TestConnBufAlloc checks that an idle connection's buffer footprint is
// near zero and that a drained burst releases its buffer.
func TestConnBufAlloc(t *testing.T) {
	h := New()
	client, server := pair(t, h, 82)
	if n := client.BufAlloc() + server.BufAlloc(); n != 0 {
		t.Fatalf("idle conn allocated %d bytes", n)
	}
	big := make([]byte, 200<<10)
	if _, err := client.Write(big); err != nil {
		t.Fatal(err)
	}
	if n := server.BufAlloc(); n < 200<<10 {
		t.Fatalf("burst alloc = %d", n)
	}
	if _, err := io.ReadFull(server, big); err != nil {
		t.Fatal(err)
	}
	if n := server.BufAlloc(); n != 0 {
		t.Fatalf("post-drain alloc = %d, want 0", n)
	}
}
