package hostos

import (
	"fmt"
	"math/rand"
	"path"
	"time"
)

// This file is the host fault-injection layer: one composable surface
// modeling everything a non-adversarial host can do to storage — power
// loss mid-write-sequence, torn and short writes, bit-rot at rest,
// media latency, and whole-file loss. Deliberately tampering a specific
// bit (the *adversarial* host action) lives on the same surface
// (FlipBit/CorruptFiles), so the filesystem's tamper, crash and
// durability batteries all drive one engine instead of the historical
// CrashWrites/HealWrites/TamperFile one-offs.
//
// Faults attach to files by glob pattern (path.Match, with exact-name
// fallback) and stack in injection order: a write first passes every
// matching crash budget, then torn-write truncation, then bit-rot.
// Every randomized fault owns an explicitly-seeded PRNG, so a test
// that injects with a fixed seed replays bit-identically.

// faultKind discriminates Fault behaviors.
type faultKind int

const (
	faultCrash faultKind = iota
	faultTorn
	faultBitRot
	faultShortRead
	faultReadLatency
)

// Fault is one composable fault-injection behavior, built by one of the
// constructors below and armed with Host.Inject. A single Fault value
// carries its own state (write budget, PRNG), so injecting the same
// value under a multi-file pattern shares that state across all
// matching files — CrashAfter(n) means n surviving writes across the
// whole matched set, the storage view of one host losing power once.
type Fault struct {
	kind    faultKind
	n       int // CrashAfter: surviving writes remaining
	prob    float64
	rng     *rand.Rand
	latency time.Duration
	tripped bool
}

// CrashAfter models a host crash during a write sequence: the next n
// writes to matching files land, every later one is silently dropped
// until Heal (the reboot). The budget is shared across all files the
// pattern matches.
func CrashAfter(n int) *Fault { return &Fault{kind: faultCrash, n: n} }

// TornWrites makes each matching write, with probability prob, persist
// only a prefix of the buffer (the torn tail is dropped). Deterministic
// under seed.
func TornWrites(prob float64, seed int64) *Fault {
	return &Fault{kind: faultTorn, prob: prob, rng: rand.New(rand.NewSource(seed))}
}

// BitRot flips each written bit with probability prob as it lands on
// the medium — persistent storage decay, deterministic under seed. Use
// CorruptFiles to rot bytes already at rest.
func BitRot(prob float64, seed int64) *Fault {
	return &Fault{kind: faultBitRot, prob: prob, rng: rand.New(rand.NewSource(seed))}
}

// ShortReads makes each matching ReadFileAt, with probability prob,
// return only a prefix of the available bytes. Deterministic under
// seed. Consumers must treat a short read as a fault, never as
// zero-fill.
func ShortReads(prob float64, seed int64) *Fault {
	return &Fault{kind: faultShortRead, prob: prob, rng: rand.New(rand.NewSource(seed))}
}

// ReadLatency delays every matching read by d — a degraded medium. The
// sleep happens outside the host lock, so latency on one file does not
// stall the whole host.
func ReadLatency(d time.Duration) *Fault { return &Fault{kind: faultReadLatency, latency: d} }

// injection is one armed (pattern, fault) pair.
type injection struct {
	pattern string
	f       *Fault
}

func (in *injection) matches(name string) bool {
	if in.pattern == name {
		return true
	}
	ok, err := path.Match(in.pattern, name)
	return err == nil && ok
}

// Inject arms faults on every file matching pattern (a path.Match glob,
// or an exact name). Faults stack: matching injections apply in the
// order they were armed, across Inject calls.
func (h *Host) Inject(pattern string, faults ...*Fault) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, f := range faults {
		h.faults = append(h.faults, &injection{pattern: pattern, f: f})
	}
}

// Heal disarms every fault injected under exactly this pattern,
// reporting whether any of them actually fired (a dropped or torn
// write, a flipped bit, a shortened read).
func (h *Host) Heal(pattern string) (tripped bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	kept := h.faults[:0]
	for _, in := range h.faults {
		if in.pattern == pattern {
			tripped = tripped || in.f.tripped
			continue
		}
		kept = append(kept, in)
	}
	h.faults = kept
	return tripped
}

// FlipBit flips one bit of a stored file — the precise hostile-host
// action the integrity batteries use.
func (h *Host) FlipBit(name string, off int) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	f, ok := h.files[name]
	if !ok || off >= len(f) {
		return ErrNoFile
	}
	f[off] ^= 0x80
	return nil
}

// CorruptFiles flips nBits random bits in the byte range [from, to) of
// every file matching pattern (to <= 0 means end of file), returning
// how many bits were flipped in total. Deterministic under seed — the
// at-rest form of BitRot, for rotting data that is already stored.
func (h *Host) CorruptFiles(pattern string, from, to, nBits int, seed int64) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	rng := rand.New(rand.NewSource(seed))
	flipped := 0
	for _, name := range h.matchingFiles(pattern) {
		f := h.files[name]
		lo, hi := from, to
		if hi <= 0 || hi > len(f) {
			hi = len(f)
		}
		if lo >= hi {
			continue
		}
		for i := 0; i < nBits; i++ {
			off := lo + rng.Intn(hi-lo)
			f[off] ^= 1 << uint(rng.Intn(8))
			flipped++
		}
	}
	return flipped
}

// DropFiles deletes every file matching pattern — a lost disk or an
// rm-happy host — returning how many were removed.
func (h *Host) DropFiles(pattern string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	names := h.matchingFiles(pattern)
	for _, name := range names {
		delete(h.files, name)
	}
	return len(names)
}

// CopyFiles snapshots every file matching pattern (for rollback-attack
// and crash tests over multi-file layouts).
func (h *Host) CopyFiles(pattern string) map[string][]byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string][]byte)
	for _, name := range h.matchingFiles(pattern) {
		out[name] = append([]byte(nil), h.files[name]...)
	}
	return out
}

// PutFiles stores (or replaces) a set of files wholesale, bypassing
// write faults — the restore half of CopyFiles.
func (h *Host) PutFiles(files map[string][]byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for name, data := range files {
		h.files[name] = append([]byte(nil), data...)
	}
}

// matchingFiles returns the names of stored files matching pattern.
// Caller holds h.mu.
func (h *Host) matchingFiles(pattern string) []string {
	var names []string
	for name := range h.files {
		if pattern == name {
			names = append(names, name)
			continue
		}
		if ok, err := path.Match(pattern, name); err == nil && ok {
			names = append(names, name)
		}
	}
	return names
}

// applyWriteFaults runs p through every armed write fault matching
// name. It returns the (possibly truncated or rotted) bytes to store,
// or false to drop the write entirely. Caller holds h.mu; p is never
// mutated in place.
func (h *Host) applyWriteFaults(name string, p []byte) ([]byte, bool) {
	for _, in := range h.faults {
		if !in.matches(name) {
			continue
		}
		switch f := in.f; f.kind {
		case faultCrash:
			if f.n <= 0 {
				f.tripped = true
				return nil, false
			}
			f.n--
		case faultTorn:
			if f.rng.Float64() < f.prob && len(p) > 0 {
				f.tripped = true
				p = p[:f.rng.Intn(len(p))]
			}
		case faultBitRot:
			var rotted []byte
			for i := range p {
				for bit := 0; bit < 8; bit++ {
					if f.rng.Float64() < f.prob {
						if rotted == nil {
							rotted = append([]byte(nil), p...)
						}
						rotted[i] ^= 1 << uint(bit)
						f.tripped = true
					}
				}
			}
			if rotted != nil {
				p = rotted
			}
		}
	}
	return p, true
}

// applyReadFaults post-processes a ReadFileAt result, returning the
// (possibly shortened) byte count and any latency to serve outside the
// lock. Caller holds h.mu.
func (h *Host) applyReadFaults(name string, n int) (int, time.Duration) {
	var delay time.Duration
	for _, in := range h.faults {
		if !in.matches(name) {
			continue
		}
		switch f := in.f; f.kind {
		case faultShortRead:
			if n > 0 && f.rng.Float64() < f.prob {
				f.tripped = true
				n = f.rng.Intn(n)
			}
		case faultReadLatency:
			delay += f.latency
		}
	}
	return n, delay
}

// faultString names a fault for diagnostics.
func (f *Fault) String() string {
	switch f.kind {
	case faultCrash:
		return fmt.Sprintf("CrashAfter(remaining=%d tripped=%v)", f.n, f.tripped)
	case faultTorn:
		return fmt.Sprintf("TornWrites(p=%g)", f.prob)
	case faultBitRot:
		return fmt.Sprintf("BitRot(p=%g)", f.prob)
	case faultShortRead:
		return fmt.Sprintf("ShortReads(p=%g)", f.prob)
	case faultReadLatency:
		return fmt.Sprintf("ReadLatency(%v)", f.latency)
	}
	return "Fault(?)"
}
