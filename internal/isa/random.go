package isa

import "math/rand"

// Random instruction generation, for randomized differential testing of
// the virtual CPU: the cached Run fast path (block chaining + threaded
// dispatch) must match the Step slow path state-for-state on arbitrary
// programs over the full opcode space — including programs whose
// branches land mid-instruction and decode garbage, the hazard this
// ISA's variable-length encoding exists to model.

// RandomInst returns a well-formed (encodable) instruction whose opcode
// is drawn uniformly from the full defined opcode space and whose
// operands are drawn from r. Branch displacements are kept small so
// that random programs keep jumping around their own code (often into
// the middle of other instructions) instead of leaving it immediately.
func RandomInst(r *rand.Rand) Inst {
	return RandomInstOp(r, Op(1+r.Intn(NumOps-1)))
}

// RandomInstOp returns a well-formed instruction with opcode op and
// random operands drawn from r.
func RandomInstOp(r *rand.Rand, op Op) Inst {
	in := Inst{Op: op}
	switch op.Format() {
	case FNone:
	case FR:
		in.R1 = randReg(r)
	case FRR:
		in.R1, in.R2 = randReg(r), randReg(r)
	case FRI64:
		in.R1, in.Imm = randReg(r), int64(r.Uint64())
	case FRI32:
		in.R1, in.Imm = randReg(r), randImm32(r)
	case FI32:
		in.Imm = randImm32(r)
	case FI16:
		in.Imm = int64(r.Intn(1 << 16))
	case FRel32:
		// Small displacements: stay near (and often inside) the code.
		in.Imm = int64(r.Intn(129) - 64)
	case FRMem, FMemR:
		in.R1, in.Mem = randReg(r), randMem(r)
	case FBR:
		in.Bnd, in.R1 = randBnd(r), randReg(r)
	case FBMem:
		in.Bnd, in.Mem = randBnd(r), randMem(r)
	case FBB:
		in.Bnd, in.Bnd2 = randBnd(r), randBnd(r)
	case FCFI:
		in.DomainID = r.Uint32()
	}
	return in
}

func randReg(r *rand.Rand) Reg    { return Reg(r.Intn(NumRegs)) }
func randBnd(r *rand.Rand) BndReg { return BndReg(r.Intn(NumBndRegs)) }

func randImm32(r *rand.Rand) int64 {
	// Mix small immediates (interesting arithmetic) with full-range
	// ones (shift counts, overflow).
	if r.Intn(2) == 0 {
		return int64(r.Intn(257) - 128)
	}
	return int64(int32(r.Uint32()))
}

func randMem(r *rand.Rand) MemRef {
	m := MemRef{Base: randReg(r), Index: RegNone, Scale: 1}
	switch r.Intn(8) {
	case 0:
		m.Base = RegNone // absolute (direct memory offset)
	case 1:
		m.Base = RegPC // PC-relative
	}
	if r.Intn(4) == 0 {
		m.Index = randReg(r)
		m.Scale = uint8(1 << r.Intn(4))
	}
	// Small displacements: register-relative accesses mostly stay near
	// whatever region the register points into.
	m.Disp = int32(r.Intn(257) - 128)
	return m
}
