package isa

import "fmt"

// Inst is a decoded (or not-yet-encoded) OVM instruction. It is the common
// currency between the assembler, the MMDSFI instrumenter, the verifier's
// disassembler and the virtual CPU.
type Inst struct {
	// Op is the opcode.
	Op Op
	// R1 is the first register operand (destination for two-operand
	// forms; the checked register for bound checks).
	R1 Reg
	// R2 is the second register operand (source).
	R2 Reg
	// Bnd is the bound-register operand of MPX instructions.
	Bnd BndReg
	// Bnd2 is the source bound register of bndmov.
	Bnd2 BndReg
	// Imm holds an immediate operand: imm64 for movri, sign-extended
	// imm32 for ALU-immediate forms, rel32 displacement for direct
	// branches, imm16 for reti.
	Imm int64
	// Mem is the memory operand for FRMem/FMemR/FBMem formats.
	Mem MemRef
	// DomainID is the 32-bit domain ID carried by a cfi_label. In
	// binaries produced by the toolchain it is zero; the LibOS loader
	// rewrites it when loading the binary into a domain.
	DomainID uint32

	// Label is the symbolic branch target used before layout. The
	// assembler resolves it into Imm (a rel32); encoded instructions
	// never carry labels.
	Label string
}

// Len returns the encoded length of the instruction in bytes.
func (in Inst) Len() int { return EncodedLen(in.Op) }

// EncodedLen returns the encoded length in bytes of an instruction with
// opcode op. Every opcode has a fixed length; variability across opcodes is
// what makes the encoding "variable-length" in the x86 sense.
func EncodedLen(op Op) int {
	switch op.Format() {
	case FNone:
		return 1
	case FR:
		return 2
	case FRR:
		return 3
	case FRI64:
		return 10
	case FRI32:
		return 6
	case FI32:
		return 5
	case FI16:
		return 3
	case FRel32:
		return 5
	case FRMem, FMemR:
		return 2 + memRefLen
	case FBR:
		return 3
	case FBMem:
		return 2 + memRefLen
	case FBB:
		return 3
	case FCFI:
		return CFILabelLen
	}
	return 1
}

// String renders the instruction in a readable assembly-like syntax.
func (in Inst) String() string {
	switch in.Op.Format() {
	case FNone:
		return in.Op.String()
	case FR:
		return fmt.Sprintf("%s %s", in.Op, in.R1)
	case FRR:
		return fmt.Sprintf("%s %s, %s", in.Op, in.R1, in.R2)
	case FRI64, FRI32:
		return fmt.Sprintf("%s %s, %d", in.Op, in.R1, in.Imm)
	case FI32, FI16:
		return fmt.Sprintf("%s %d", in.Op, in.Imm)
	case FRel32:
		if in.Label != "" {
			return fmt.Sprintf("%s %s", in.Op, in.Label)
		}
		return fmt.Sprintf("%s %+d", in.Op, in.Imm)
	case FRMem:
		if in.Op == OpJmpM || in.Op == OpCallM {
			return fmt.Sprintf("%s %s", in.Op, in.Mem)
		}
		return fmt.Sprintf("%s %s, %s", in.Op, in.R1, in.Mem)
	case FMemR:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Mem, in.R1)
	case FBR:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Bnd, in.R1)
	case FBMem:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Bnd, in.Mem)
	case FBB:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Bnd, in.Bnd2)
	case FCFI:
		return fmt.Sprintf("cfi_label %#x", in.DomainID)
	}
	return in.Op.String()
}
