// Package isa defines the OVM instruction set architecture: a synthetic
// 64-bit ISA that stands in for x86-64 in this reproduction of the Occlum
// paper (ASPLOS'20).
//
// OVM deliberately reproduces the x86-64 properties that the paper's MMDSFI
// scheme and binary verifier depend on:
//
//   - Variable-length instruction encoding, so a faulty control transfer can
//     land in the middle of an instruction and decode garbage (the hazard
//     that drives Stage 1 of the verifier).
//   - Scale-index-base (SIB) memory operands, PC-relative operands, absolute
//     ("direct memory offset") operands and a vector-SIB scatter, matching
//     every row of the paper's Figure 4.
//   - Direct, register-indirect, memory-indirect and return-based control
//     transfers, matching every row of Figure 3.
//   - MPX-style bound registers bnd0..bnd3 with lower/upper check
//     instructions that raise a #BR exception, plus the dangerous
//     bound-mutating instructions (bndmk/bndmov).
//   - A set of privileged/dangerous instructions standing in for the SGX
//     (eexit/eaccept/emodpe) and miscellaneous (xrstor/wrfsbase/wrgsbase)
//     instructions that the verifier's Stage 2 must reject.
//   - An 8-byte cfi_label encoding whose first four bytes form a magic
//     sequence that cannot appear in well-formed uninstrumented code and
//     whose last four bytes hold a domain ID.
package isa

import "fmt"

// Reg identifies one of the sixteen 64-bit general-purpose registers.
//
// Register conventions (mirroring the paper's toolchain-reserved registers):
//
//	R0        syscall number / syscall return value
//	R1..R5    syscall arguments; general use otherwise
//	R10       process-entry pointer to the auxiliary vector
//	R13       toolchain scratch: holds popped return targets (ret rewriting)
//	R14       toolchain scratch: cfi_guard load target
//	R15 (SP)  stack pointer (push/pop operate on it implicitly)
type Reg uint8

// General purpose registers.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15

	// SP is the conventional stack pointer (alias of R15).
	SP = R15
	// RetScratch is the toolchain-reserved register used by MMDSFI's
	// ret rewriting (pop target, cfi_guard it, jump).
	RetScratch = R13
	// GuardScratch is the toolchain-reserved register used by cfi_guard
	// to hold the 8 bytes loaded from a prospective indirect target.
	GuardScratch = R14

	// NumRegs is the number of general-purpose registers.
	NumRegs = 16

	// RegNone marks an absent base or index register in a MemRef.
	RegNone Reg = 0xFF
	// RegPC marks a PC-relative base in a MemRef (the x86 RIP-relative
	// addressing mode). The effective address is the address of the
	// *next* instruction plus the displacement.
	RegPC Reg = 0xFE
)

// Valid reports whether r names a real general-purpose register.
func (r Reg) Valid() bool { return r < NumRegs }

// String returns the assembly name of the register.
func (r Reg) String() string {
	switch r {
	case RegNone:
		return "none"
	case RegPC:
		return "pc"
	case R15:
		return "sp"
	default:
		return fmt.Sprintf("r%d", uint8(r))
	}
}

// BndReg identifies one of the four MPX bound registers.
type BndReg uint8

// MPX bound registers. The Occlum LibOS initializes BND0 to the data region
// [D.begin, D.end) of the running SIP's domain and BND1 to the exact 8-byte
// cfi_label value of that domain, so that bndcl+bndcu against BND1 is an
// equality test.
const (
	BND0 BndReg = iota
	BND1
	BND2
	BND3

	// NumBndRegs is the number of MPX bound registers.
	NumBndRegs = 4
)

// Valid reports whether b names a real bound register.
func (b BndReg) Valid() bool { return b < NumBndRegs }

// String returns the assembly name of the bound register.
func (b BndReg) String() string { return fmt.Sprintf("bnd%d", uint8(b)) }

// MemRef is an OVM memory operand: base + index*scale + disp.
//
// The operand shapes map onto the paper's Figure 4 categories:
//
//   - Base set, Index optional: scale-index-base (SIB) addressing.
//   - Base == RegPC: RIP-relative addressing.
//   - Base == RegNone and Index == RegNone: direct memory offset (an
//     absolute address); the verifier rejects this form.
//   - Used by OpVScatter: vector SIB; the verifier rejects it.
type MemRef struct {
	// Base is the base register, RegNone for none, or RegPC for
	// PC-relative addressing.
	Base Reg
	// Index is the index register or RegNone.
	Index Reg
	// Scale multiplies the index register; it must be 1, 2, 4 or 8.
	// A zero Scale is normalized to 1 when the Index is absent.
	Scale uint8
	// Disp is the signed 32-bit displacement.
	Disp int32
}

// Abs returns a direct-memory-offset operand for the absolute address addr.
// The Occlum verifier rejects instructions using this form (Figure 4).
func Abs(addr int32) MemRef { return MemRef{Base: RegNone, Index: RegNone, Scale: 1, Disp: addr} }

// Mem returns a base+disp memory operand.
func Mem(base Reg, disp int32) MemRef {
	return MemRef{Base: base, Index: RegNone, Scale: 1, Disp: disp}
}

// MemSIB returns a full scale-index-base memory operand.
func MemSIB(base, index Reg, scale uint8, disp int32) MemRef {
	return MemRef{Base: base, Index: index, Scale: scale, Disp: disp}
}

// MemPC returns a PC-relative memory operand. The effective address is the
// address of the next instruction plus disp.
func MemPC(disp int32) MemRef {
	return MemRef{Base: RegPC, Index: RegNone, Scale: 1, Disp: disp}
}

// IsAbs reports whether m is a direct memory offset (no base, no index).
func (m MemRef) IsAbs() bool { return m.Base == RegNone && m.Index == RegNone }

// IsPCRel reports whether m is PC-relative.
func (m MemRef) IsPCRel() bool { return m.Base == RegPC }

// HasIndex reports whether m uses an index register.
func (m MemRef) HasIndex() bool { return m.Index != RegNone && m.Index != RegPC }

// ValidScale reports whether the scale factor is one of 1, 2, 4, 8.
func (m MemRef) ValidScale() bool {
	switch m.Scale {
	case 1, 2, 4, 8:
		return true
	}
	return false
}

// String renders the operand in a readable [base+index*scale+disp] form.
func (m MemRef) String() string {
	s := "["
	switch {
	case m.IsAbs():
		return fmt.Sprintf("[abs %#x]", uint32(m.Disp))
	case m.IsPCRel():
		s += "pc"
	default:
		s += m.Base.String()
	}
	if m.HasIndex() {
		s += fmt.Sprintf("+%s*%d", m.Index, m.Scale)
	}
	if m.Disp != 0 {
		s += fmt.Sprintf("%+d", m.Disp)
	}
	return s + "]"
}
