package isa

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Encoding errors.
var (
	// ErrBadInst reports an instruction whose operands do not fit its
	// opcode's format (invalid register, scale, or immediate range).
	ErrBadInst = errors.New("isa: malformed instruction")
	// ErrTruncated reports a byte stream that ends in the middle of an
	// instruction.
	ErrTruncated = errors.New("isa: truncated instruction")
)

// Encode appends the binary encoding of in to dst and returns the extended
// slice. It validates operand well-formedness but not higher-level policy
// (that is the verifier's job).
func Encode(dst []byte, in Inst) ([]byte, error) {
	if !in.Op.Valid() {
		return dst, fmt.Errorf("%w: opcode %d", ErrBadInst, in.Op)
	}
	switch in.Op.Format() {
	case FNone:
		return append(dst, byte(in.Op)), nil
	case FR:
		if !in.R1.Valid() {
			return dst, fmt.Errorf("%w: %s: bad register", ErrBadInst, in.Op)
		}
		return append(dst, byte(in.Op), byte(in.R1)), nil
	case FRR:
		if !in.R1.Valid() || !in.R2.Valid() {
			return dst, fmt.Errorf("%w: %s: bad register", ErrBadInst, in.Op)
		}
		return append(dst, byte(in.Op), byte(in.R1), byte(in.R2)), nil
	case FRI64:
		if !in.R1.Valid() {
			return dst, fmt.Errorf("%w: %s: bad register", ErrBadInst, in.Op)
		}
		dst = append(dst, byte(in.Op), byte(in.R1))
		return binary.LittleEndian.AppendUint64(dst, uint64(in.Imm)), nil
	case FRI32:
		if !in.R1.Valid() {
			return dst, fmt.Errorf("%w: %s: bad register", ErrBadInst, in.Op)
		}
		if err := checkImm32(in); err != nil {
			return dst, err
		}
		dst = append(dst, byte(in.Op), byte(in.R1))
		return binary.LittleEndian.AppendUint32(dst, uint32(int32(in.Imm))), nil
	case FI32:
		if err := checkImm32(in); err != nil {
			return dst, err
		}
		dst = append(dst, byte(in.Op))
		return binary.LittleEndian.AppendUint32(dst, uint32(int32(in.Imm))), nil
	case FI16:
		if in.Imm < 0 || in.Imm > 0xFFFF {
			return dst, fmt.Errorf("%w: %s: imm16 out of range", ErrBadInst, in.Op)
		}
		dst = append(dst, byte(in.Op))
		return binary.LittleEndian.AppendUint16(dst, uint16(in.Imm)), nil
	case FRel32:
		if err := checkImm32(in); err != nil {
			return dst, err
		}
		dst = append(dst, byte(in.Op))
		return binary.LittleEndian.AppendUint32(dst, uint32(int32(in.Imm))), nil
	case FRMem, FMemR:
		if !in.R1.Valid() {
			return dst, fmt.Errorf("%w: %s: bad register", ErrBadInst, in.Op)
		}
		dst = append(dst, byte(in.Op), byte(in.R1))
		return appendMemRef(dst, in.Op, in.Mem)
	case FBR:
		if !in.Bnd.Valid() || !in.R1.Valid() {
			return dst, fmt.Errorf("%w: %s: bad operand", ErrBadInst, in.Op)
		}
		return append(dst, byte(in.Op), byte(in.Bnd), byte(in.R1)), nil
	case FBMem:
		if !in.Bnd.Valid() {
			return dst, fmt.Errorf("%w: %s: bad bound register", ErrBadInst, in.Op)
		}
		dst = append(dst, byte(in.Op), byte(in.Bnd))
		return appendMemRef(dst, in.Op, in.Mem)
	case FBB:
		if !in.Bnd.Valid() || !in.Bnd2.Valid() {
			return dst, fmt.Errorf("%w: %s: bad bound register", ErrBadInst, in.Op)
		}
		return append(dst, byte(in.Op), byte(in.Bnd), byte(in.Bnd2)), nil
	case FCFI:
		dst = append(dst, CFIMagic[:]...)
		return binary.LittleEndian.AppendUint32(dst, in.DomainID), nil
	}
	return dst, fmt.Errorf("%w: %s: unknown format", ErrBadInst, in.Op)
}

func checkImm32(in Inst) error {
	if in.Imm < -1<<31 || in.Imm > 1<<31-1 {
		return fmt.Errorf("%w: %s: imm32 out of range: %d", ErrBadInst, in.Op, in.Imm)
	}
	return nil
}

func appendMemRef(dst []byte, op Op, m MemRef) ([]byte, error) {
	okBase := m.Base.Valid() || m.Base == RegNone || m.Base == RegPC
	okIndex := m.Index.Valid() || m.Index == RegNone
	if !okBase || !okIndex || !m.ValidScale() {
		return dst, fmt.Errorf("%w: %s: bad memory operand %s", ErrBadInst, op, m)
	}
	dst = append(dst, byte(m.Base), byte(m.Index), m.Scale)
	return binary.LittleEndian.AppendUint32(dst, uint32(m.Disp)), nil
}

// Decode decodes the instruction starting at code[off]. It returns the
// instruction and its encoded length. Decoding fails with ErrTruncated if
// the stream ends mid-instruction and with ErrBadInst for undefined opcodes
// or malformed operands — exactly the "invalid instruction" condition of
// the verifier's Algorithm 1 (line 9).
func Decode(code []byte, off int) (Inst, int, error) {
	if off < 0 || off >= len(code) {
		return Inst{}, 0, ErrTruncated
	}
	op := Op(code[off])
	if !op.Valid() {
		return Inst{}, 0, fmt.Errorf("%w: opcode byte %#x at offset %d", ErrBadInst, code[off], off)
	}
	n := EncodedLen(op)
	if off+n > len(code) {
		return Inst{}, 0, fmt.Errorf("%w: %s at offset %d", ErrTruncated, op, off)
	}
	b := code[off : off+n]
	in := Inst{Op: op}
	switch op.Format() {
	case FNone:
	case FR:
		in.R1 = Reg(b[1])
		if !in.R1.Valid() {
			return Inst{}, 0, badOperand(op, off)
		}
	case FRR:
		in.R1, in.R2 = Reg(b[1]), Reg(b[2])
		if !in.R1.Valid() || !in.R2.Valid() {
			return Inst{}, 0, badOperand(op, off)
		}
	case FRI64:
		in.R1 = Reg(b[1])
		if !in.R1.Valid() {
			return Inst{}, 0, badOperand(op, off)
		}
		in.Imm = int64(binary.LittleEndian.Uint64(b[2:]))
	case FRI32:
		in.R1 = Reg(b[1])
		if !in.R1.Valid() {
			return Inst{}, 0, badOperand(op, off)
		}
		in.Imm = int64(int32(binary.LittleEndian.Uint32(b[2:])))
	case FI32:
		in.Imm = int64(int32(binary.LittleEndian.Uint32(b[1:])))
	case FI16:
		in.Imm = int64(binary.LittleEndian.Uint16(b[1:]))
	case FRel32:
		in.Imm = int64(int32(binary.LittleEndian.Uint32(b[1:])))
	case FRMem, FMemR:
		in.R1 = Reg(b[1])
		if !in.R1.Valid() {
			return Inst{}, 0, badOperand(op, off)
		}
		m, err := decodeMemRef(b[2:], op, off)
		if err != nil {
			return Inst{}, 0, err
		}
		in.Mem = m
	case FBR:
		in.Bnd, in.R1 = BndReg(b[1]), Reg(b[2])
		if !in.Bnd.Valid() || !in.R1.Valid() {
			return Inst{}, 0, badOperand(op, off)
		}
	case FBMem:
		in.Bnd = BndReg(b[1])
		if !in.Bnd.Valid() {
			return Inst{}, 0, badOperand(op, off)
		}
		m, err := decodeMemRef(b[2:], op, off)
		if err != nil {
			return Inst{}, 0, err
		}
		in.Mem = m
	case FBB:
		in.Bnd, in.Bnd2 = BndReg(b[1]), BndReg(b[2])
		if !in.Bnd.Valid() || !in.Bnd2.Valid() {
			return Inst{}, 0, badOperand(op, off)
		}
	case FCFI:
		if b[1] != CFIMagic[1] || b[2] != CFIMagic[2] || b[3] != CFIMagic[3] {
			return Inst{}, 0, fmt.Errorf("%w: corrupt cfi_label at offset %d", ErrBadInst, off)
		}
		in.DomainID = binary.LittleEndian.Uint32(b[4:])
	}
	return in, n, nil
}

func badOperand(op Op, off int) error {
	return fmt.Errorf("%w: %s: bad operand at offset %d", ErrBadInst, op, off)
}

func decodeMemRef(b []byte, op Op, off int) (MemRef, error) {
	m := MemRef{
		Base:  Reg(b[0]),
		Index: Reg(b[1]),
		Scale: b[2],
		Disp:  int32(binary.LittleEndian.Uint32(b[3:])),
	}
	okBase := m.Base.Valid() || m.Base == RegNone || m.Base == RegPC
	okIndex := m.Index.Valid() || m.Index == RegNone
	if !okBase || !okIndex || !m.ValidScale() {
		return MemRef{}, fmt.Errorf("%w: %s: bad memory operand at offset %d", ErrBadInst, op, off)
	}
	return m, nil
}

// FindCFIMagic returns the offsets of every occurrence of the 4-byte
// CFIMagic sequence in code, scanning byte by byte. This is line 2 of the
// verifier's Algorithm 1 and is also used by the assembler to enforce the
// nonexistence property.
func FindCFIMagic(code []byte) []int {
	var offs []int
	for i := 0; i+len(CFIMagic) <= len(code); i++ {
		if code[i] == CFIMagic[0] && code[i+1] == CFIMagic[1] &&
			code[i+2] == CFIMagic[2] && code[i+3] == CFIMagic[3] {
			offs = append(offs, i)
		}
	}
	return offs
}

// CFILabelValue returns the 64-bit value stored at a cfi_label with the
// given domain ID: the little-endian interpretation of the 8 encoded bytes.
// The LibOS initializes BND1 to exactly this value so that
// bndcl+bndcu against BND1 is an equality test (cfi_guard).
func CFILabelValue(domainID uint32) uint64 {
	var b [8]byte
	copy(b[:4], CFIMagic[:])
	binary.LittleEndian.PutUint32(b[4:], domainID)
	return binary.LittleEndian.Uint64(b[:])
}
