package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodedLenMatchesEncode(t *testing.T) {
	for op := Op(1); op < opMax; op++ {
		in := sampleInst(op)
		b, err := Encode(nil, in)
		if err != nil {
			t.Fatalf("%s: encode: %v", op, err)
		}
		if len(b) != EncodedLen(op) {
			t.Errorf("%s: encoded %d bytes, EncodedLen says %d", op, len(b), EncodedLen(op))
		}
	}
}

// sampleInst builds a representative well-formed instruction for op.
func sampleInst(op Op) Inst {
	in := Inst{Op: op, R1: R3, R2: R4, Bnd: BND0, Bnd2: BND1, Imm: 42,
		Mem: MemSIB(R5, R6, 4, -16), DomainID: 7}
	if op.Format() == FI16 {
		in.Imm = 16
	}
	return in
}

func TestRoundTripAllOpcodes(t *testing.T) {
	for op := Op(1); op < opMax; op++ {
		in := sampleInst(op)
		b, err := Encode(nil, in)
		if err != nil {
			t.Fatalf("%s: encode: %v", op, err)
		}
		got, n, err := Decode(b, 0)
		if err != nil {
			t.Fatalf("%s: decode: %v", op, err)
		}
		if n != len(b) {
			t.Errorf("%s: decode consumed %d of %d bytes", op, n, len(b))
		}
		if got.Op != in.Op {
			t.Errorf("%s: round-trip opcode mismatch: got %s", op, got.Op)
		}
		if got.String() != canonical(in).String() {
			t.Errorf("%s: round trip: got %q want %q", op, got, canonical(in))
		}
	}
}

// canonical zeroes the fields that op's format does not encode, so that a
// decoded instruction compares equal to its pre-encoding form.
func canonical(in Inst) Inst {
	out := Inst{Op: in.Op}
	switch in.Op.Format() {
	case FR:
		out.R1 = in.R1
	case FRR:
		out.R1, out.R2 = in.R1, in.R2
	case FRI64, FRI32:
		out.R1, out.Imm = in.R1, in.Imm
	case FI32, FI16, FRel32:
		out.Imm = in.Imm
	case FRMem, FMemR:
		out.R1, out.Mem = in.R1, in.Mem
	case FBR:
		out.Bnd, out.R1 = in.Bnd, in.R1
	case FBMem:
		out.Bnd, out.Mem = in.Bnd, in.Mem
	case FBB:
		out.Bnd, out.Bnd2 = in.Bnd, in.Bnd2
	case FCFI:
		out.DomainID = in.DomainID
	}
	return out
}

func TestRoundTripQuick(t *testing.T) {
	// Property: any well-formed instruction survives encode→decode.
	f := func(opRaw uint8, r1, r2 uint8, bnd, bnd2 uint8, imm int64, base, index uint8, scaleSel uint8, disp int32, id uint32) bool {
		op := Op(opRaw%uint8(opMax-1)) + 1
		scales := []uint8{1, 2, 4, 8}
		in := Inst{
			Op: op, R1: Reg(r1 % NumRegs), R2: Reg(r2 % NumRegs),
			Bnd: BndReg(bnd % NumBndRegs), Bnd2: BndReg(bnd2 % NumBndRegs),
			Imm: imm, DomainID: id,
			Mem: MemRef{Base: Reg(base % NumRegs), Index: Reg(index % NumRegs),
				Scale: scales[scaleSel%4], Disp: disp},
		}
		switch op.Format() {
		case FRI32, FI32, FRel32:
			in.Imm = int64(int32(imm))
		case FI16:
			in.Imm = int64(uint16(imm))
		}
		b, err := Encode(nil, in)
		if err != nil {
			return false
		}
		got, n, err := Decode(b, 0)
		if err != nil || n != len(b) {
			return false
		}
		return got == canonical(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsInvalidOpcode(t *testing.T) {
	if _, _, err := Decode([]byte{0xEE}, 0); err == nil {
		t.Fatal("decoding an undefined opcode byte should fail")
	}
	if _, _, err := Decode([]byte{0}, 0); err == nil {
		t.Fatal("decoding OpInvalid should fail")
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	b, err := Encode(nil, Inst{Op: OpMovRI, R1: R1, Imm: 123456})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(b); cut++ {
		if _, _, err := Decode(b[:cut], 0); err == nil {
			t.Errorf("decoding %d of %d bytes should fail", cut, len(b))
		}
	}
}

func TestDecodeRejectsBadOperands(t *testing.T) {
	cases := [][]byte{
		{byte(OpMovRR), 99, 0},                       // bad register
		{byte(OpBndCL), 9, 0},                        // bad bound register
		{byte(OpLoad), 0, 0xF0, 0xFF, 1, 0, 0, 0, 0}, // bad base reg
		{byte(OpLoad), 0, 1, 0xFF, 3, 0, 0, 0, 0},    // bad scale
		{byte(OpCFILabel), 0, 0, 0, 0, 0, 0, 0},      // corrupt magic
	}
	for i, c := range cases {
		if _, _, err := Decode(c, 0); err == nil {
			t.Errorf("case %d: decode should fail", i)
		}
	}
}

func TestCFILabelProperties(t *testing.T) {
	// Alignment: fixed 8-byte encoding.
	b, err := Encode(nil, Inst{Op: OpCFILabel, DomainID: 0xDEADBEEF})
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != CFILabelLen {
		t.Fatalf("cfi_label encodes to %d bytes, want %d", len(b), CFILabelLen)
	}
	// Uniqueness: last 4 bytes are the domain ID.
	in, _, err := Decode(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if in.DomainID != 0xDEADBEEF {
		t.Fatalf("domain ID round trip: got %#x", in.DomainID)
	}
	// The 64-bit label value embeds magic and ID.
	v := CFILabelValue(0xDEADBEEF)
	var enc [8]byte
	copy(enc[:], b)
	if got := uint64(enc[0]) | uint64(enc[1])<<8 | uint64(enc[2])<<16 | uint64(enc[3])<<24 |
		uint64(enc[4])<<32 | uint64(enc[5])<<40 | uint64(enc[6])<<48 | uint64(enc[7])<<56; got != v {
		t.Fatalf("CFILabelValue mismatch: %#x vs %#x", got, v)
	}
}

func TestFindCFIMagic(t *testing.T) {
	var code []byte
	code, _ = Encode(code, Inst{Op: OpNop})
	lblOff := len(code)
	code, _ = Encode(code, Inst{Op: OpCFILabel, DomainID: 5})
	code, _ = Encode(code, Inst{Op: OpAddRR, R1: R1, R2: R2})
	lbl2 := len(code)
	code, _ = Encode(code, Inst{Op: OpCFILabel, DomainID: 6})

	got := FindCFIMagic(code)
	if len(got) != 2 || got[0] != lblOff || got[1] != lbl2 {
		t.Fatalf("FindCFIMagic = %v, want [%d %d]", got, lblOff, lbl2)
	}
}

func TestDangerousSet(t *testing.T) {
	want := map[Op]bool{
		OpEExit: true, OpEAccept: true, OpEModPE: true,
		OpBndMk: true, OpBndMov: true,
		OpXRstor: true, OpWrFSBase: true, OpWrGSBase: true,
		OpHalt: true, OpTrap: true,
	}
	for op := Op(1); op < opMax; op++ {
		if op.IsDangerous() != want[op] {
			t.Errorf("%s: IsDangerous = %v, want %v", op, op.IsDangerous(), want[op])
		}
	}
}

func TestControlTransferClassification(t *testing.T) {
	// Every control transfer belongs to exactly one Figure 3 category.
	for op := Op(1); op < opMax; op++ {
		n := 0
		if op.IsDirectBranch() {
			n++
		}
		if op.IsRegIndirect() {
			n++
		}
		if op.IsMemIndirect() {
			n++
		}
		if op.IsReturn() {
			n++
		}
		if op.IsControlTransfer() && n != 1 {
			t.Errorf("%s: in %d categories", op, n)
		}
		if !op.IsControlTransfer() && n != 0 {
			t.Errorf("%s: categorized but not a control transfer", op)
		}
	}
}

func TestDecodeMisalignedGivesDifferentInstruction(t *testing.T) {
	// The variable-length hazard: decoding from the middle of an
	// instruction can yield a different, well-formed instruction.
	var code []byte
	// movri r1, imm whose bytes contain a valid opcode.
	code, _ = Encode(code, Inst{Op: OpMovRI, R1: R1, Imm: int64(OpNop)})
	in, _, err := Decode(code, 2) // start inside the immediate
	if err == nil && in.Op == OpNop {
		return // demonstrated
	}
	// Either way it decoded to something other than the real stream —
	// the point is that offset 2 is not rejected as "misaligned" by
	// the decoder itself; that is the verifier's job.
	if err != nil {
		t.Skipf("mid-instruction bytes happened to be invalid: %v", err)
	}
}

func TestMemRefString(t *testing.T) {
	cases := []struct {
		m    MemRef
		want string
	}{
		{Mem(R1, 8), "[r1+8]"},
		{Mem(R1, 0), "[r1]"},
		{MemSIB(R1, R2, 4, -8), "[r1+r2*4-8]"},
		{MemPC(16), "[pc+16]"},
		{Abs(0x1000), "[abs 0x1000]"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.m, got, c.want)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var code []byte
	for i := 0; i < 1000; i++ {
		op := Op(rng.Intn(int(OpCall)) + 1)
		code, _ = Encode(code, sampleInst(op))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := 0
		for off < len(code) {
			_, n, err := Decode(code, off)
			if err != nil {
				b.Fatal(err)
			}
			off += n
		}
	}
}

func TestEndsBlock(t *testing.T) {
	// Every control transfer ends a basic block, as does every
	// instruction that unconditionally stops the hart when executed.
	for op := OpInvalid + 1; op < Op(NumOps); op++ {
		want := op.IsControlTransfer()
		switch op {
		case OpTrap, OpHalt, OpEExit, OpEAccept, OpEModPE:
			want = true
		}
		if got := op.EndsBlock(); got != want {
			t.Errorf("%s.EndsBlock() = %v, want %v", op, got, want)
		}
	}
	// Spot checks for the ops the vm's translate loop depends on.
	for _, op := range []Op{OpJmp, OpJe, OpLoop, OpCall, OpJmpR, OpRet, OpTrap, OpHalt} {
		if !op.EndsBlock() {
			t.Errorf("%s must end a block", op)
		}
	}
	for _, op := range []Op{OpNop, OpMovRI, OpAddRR, OpLoad, OpStore, OpBndCL, OpXRstor, OpCFILabel} {
		if op.EndsBlock() {
			t.Errorf("%s must not end a block", op)
		}
	}
}

func TestRandomInstRoundTrip(t *testing.T) {
	// Every instruction RandomInst produces must be well-formed: it
	// encodes, and decoding the bytes reproduces it exactly. This is
	// the contract the vm's randomized differential test builds on.
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		in := RandomInst(r)
		b, err := Encode(nil, in)
		if err != nil {
			t.Fatalf("#%d %v: encode: %v", i, in, err)
		}
		got, n, err := Decode(b, 0)
		if err != nil {
			t.Fatalf("#%d %v: decode: %v", i, in, err)
		}
		if n != len(b) || n != EncodedLen(in.Op) {
			t.Fatalf("#%d %v: length %d, want %d", i, in, n, len(b))
		}
		if got != in {
			t.Fatalf("#%d: round trip %v -> %v", i, in, got)
		}
	}
}

func TestRandomInstCoversOpSpace(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	seen := map[Op]bool{}
	for i := 0; i < 10000; i++ {
		seen[RandomInst(r).Op] = true
	}
	for op := OpInvalid + 1; op < opMax; op++ {
		if !seen[op] {
			t.Errorf("RandomInst never produced %s", op)
		}
	}
}

func TestEvalCond(t *testing.T) {
	// The eight flag conditions, against all flag combinations, plus
	// the pairwise complement identities the conditional jumps imply.
	for _, zf := range []bool{false, true} {
		for _, lts := range []bool{false, true} {
			for _, ltu := range []bool{false, true} {
				if OpJe.EvalCond(zf, lts, ltu) != zf {
					t.Errorf("je(%v,%v,%v)", zf, lts, ltu)
				}
				if OpJl.EvalCond(zf, lts, ltu) != lts {
					t.Errorf("jl(%v,%v,%v)", zf, lts, ltu)
				}
				if OpJb.EvalCond(zf, lts, ltu) != ltu {
					t.Errorf("jb(%v,%v,%v)", zf, lts, ltu)
				}
				if OpJle.EvalCond(zf, lts, ltu) != (lts || zf) {
					t.Errorf("jle(%v,%v,%v)", zf, lts, ltu)
				}
				pairs := [][2]Op{{OpJe, OpJne}, {OpJl, OpJge}, {OpJb, OpJae}, {OpJle, OpJg}}
				for _, p := range pairs {
					if p[0].EvalCond(zf, lts, ltu) == p[1].EvalCond(zf, lts, ltu) {
						t.Errorf("%s and %s not complementary at (%v,%v,%v)", p[0], p[1], zf, lts, ltu)
					}
				}
			}
		}
	}
	// Non-flag-based opcodes always report false.
	for _, op := range []Op{OpJmp, OpLoop, OpCall, OpJmpR, OpRet, OpNop, OpAddRR} {
		if op.EvalCond(true, true, true) {
			t.Errorf("%s.EvalCond must be false", op)
		}
	}
}
