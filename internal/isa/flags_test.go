package isa

import "testing"

// TestFlagMetadata pins the flag-liveness contract (flags.go) to the
// opcode space: the writer and reader sets are exactly the documented
// ones, and CanStop covers every op whose interpreter case can raise or
// stop (cross-checked structurally against the other op metadata).
func TestFlagMetadata(t *testing.T) {
	writers := map[Op]bool{OpCmpRR: true, OpTestRR: true, OpCmpRI: true}
	for op := Op(1); op < opMax; op++ {
		if got, want := op.WritesFlags(), writers[op]; got != want {
			t.Errorf("%v.WritesFlags() = %v, want %v", op, got, want)
		}
	}

	for op := Op(1); op < opMax; op++ {
		// The readers are exactly the flag-based conditional branches:
		// every cond branch except the register-based loop.
		want := op.IsCondBranch() && op != OpLoop
		if got := op.ReadsFlags(); got != want {
			t.Errorf("%v.ReadsFlags() = %v, want %v", op, got, want)
		}
		// A reader's condition must be non-trivial under EvalCond (and a
		// non-reader must be constant-false over every flag triple).
		varies := false
		for mask := 0; mask < 8; mask++ {
			if op.EvalCond(mask&1 != 0, mask&2 != 0, mask&4 != 0) {
				varies = true
			}
		}
		if varies != op.ReadsFlags() {
			t.Errorf("%v: EvalCond varies=%v but ReadsFlags=%v", op, varies, op.ReadsFlags())
		}
	}

	// CanStop: structural cross-check. Memory users (explicit, scatter,
	// or implicit stack) can #PF; div/mod can #DE; bound checks can #BR;
	// the stop/undefined instructions end the hart. Everything else must
	// report false — the dead-flag optimizer elides flag stores across
	// those ops.
	for op := Op(1); op < opMax; op++ {
		want := false
		if k, _ := op.MemUse(); k == MemLoad || k == MemStore || k == MemScatter {
			want = true
		}
		if _, ok := op.HasImplicitStackAccess(); ok {
			want = true
		}
		switch op {
		case OpDivRR, OpModRR, OpBndCL, OpBndCU, OpBndCLM, OpBndCUM,
			OpHalt, OpTrap, OpEExit, OpEAccept, OpEModPE:
			want = true
		}
		if got := op.CanStop(); got != want {
			t.Errorf("%v.CanStop() = %v, want %v", op, got, want)
		}
	}

	// Spot-check the ops the optimizer leans on hardest.
	for _, op := range []Op{OpMovRI, OpMovRR, OpAddRR, OpAddRI, OpCmpRI, OpCmpRR,
		OpTestRR, OpNeg, OpNot, OpLea, OpNop, OpCFILabel, OpJmp, OpJle, OpLoop} {
		if op.CanStop() {
			t.Errorf("%v.CanStop() = true, want false", op)
		}
	}
	for _, op := range []Op{OpLoad, OpStore, OpPush, OpPop, OpCall, OpRet, OpDivRR, OpBndCL, OpTrap} {
		if !op.CanStop() {
			t.Errorf("%v.CanStop() = false, want true", op)
		}
	}
}
