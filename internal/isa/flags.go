package isa

// Flag-liveness metadata: the per-op contract the vm's trace optimizer
// builds on when it elides dead flag computations across block seams.
//
// The contract (relied on by internal/vm, pinned by TestFlagMetadata and
// the vm's randomized differential battery):
//
//   - The comparison flags (ZF, LTS, LTU) are written ONLY by ops for
//     which WritesFlags reports true, and each such op overwrites all
//     three — there is no partial flag update in the ISA.
//   - The flags are read ONLY by ops for which ReadsFlags reports true
//     (the flag-based conditional branches; loop is register-based and
//     reads none).
//   - An op for which CanStop reports false retires unconditionally: it
//     cannot fault, trap, or otherwise stop the hart, so no observer can
//     see the architectural state "at" that instruction.
//
// Together these justify the optimizer's dead-flag rule: a flag write is
// dead — its stores may be elided — exactly when every path from it to
// the next flag write is free of ReadsFlags ops, CanStop ops, and
// translation-unit exits (each of which exposes the flags).

// WritesFlags reports whether op writes the comparison flags. Every
// writer overwrites all three flags unconditionally.
func (op Op) WritesFlags() bool {
	switch op {
	case OpCmpRR, OpTestRR, OpCmpRI:
		return true
	}
	return false
}

// ReadsFlags reports whether op reads the comparison flags: the
// flag-based conditional branches. OpLoop branches on a register and
// reads no flags.
func (op Op) ReadsFlags() bool {
	switch op {
	case OpJe, OpJne, OpJl, OpJle, OpJg, OpJge, OpJb, OpJae:
		return true
	}
	return false
}

// CanStop reports whether executing op can stop the hart — by raising a
// hardware exception (#PF from any explicit or implicit memory access,
// #DE from div/mod, #BR from a bound check, #UD from an undefined
// instruction) or by an architectural stop (trap/halt/eexit). Ops for
// which this reports false always retire and fall through (or branch),
// so the architectural state at their boundary is never observable
// mid-translation-unit.
func (op Op) CanStop() bool {
	if k, _ := op.MemUse(); k == MemLoad || k == MemStore || k == MemScatter {
		return true // explicit memory access: #PF
	}
	if _, ok := op.HasImplicitStackAccess(); ok {
		return true // implicit stack access: #PF
	}
	switch op {
	case OpDivRR, OpModRR: // #DE
		return true
	case OpBndCL, OpBndCU, OpBndCLM, OpBndCUM: // #BR
		return true
	case OpHalt, OpTrap, OpEExit: // architectural stops
		return true
	case OpEAccept, OpEModPE: // #UD under the SGX 1.0 model
		return true
	}
	return false
}
