package isa

// Op is an OVM opcode. Every instruction begins with a single opcode byte;
// the operand bytes that follow are determined by the opcode's Format.
type Op uint8

// Opcode space. The numeric values are part of the binary encoding and must
// not be reordered.
const (
	OpInvalid Op = iota

	// Data movement.
	OpMovRI  // movri dst, imm64
	OpMovRR  // movrr dst, src
	OpLoad   // load dst, mem       (64-bit load)
	OpStore  // store mem, src      (64-bit store)
	OpLoadB  // loadb dst, mem      (8-bit load, zero-extended)
	OpStoreB // storeb mem, src     (stores the low byte of src)
	OpLea    // lea dst, mem        (effective address only; no access)
	OpPush   // push src            (implicit store to [sp-8]; sp -= 8)
	OpPushI  // pushi imm32         (implicit store to [sp-8]; sp -= 8)
	OpPop    // pop dst             (implicit load from [sp]; sp += 8)

	// ALU, register-register.
	OpAddRR  // add dst, src
	OpSubRR  // sub dst, src
	OpMulRR  // mul dst, src
	OpDivRR  // div dst, src        (signed; divide-by-zero raises #DE)
	OpModRR  // mod dst, src        (signed; divide-by-zero raises #DE)
	OpAndRR  // and dst, src
	OpOrRR   // or dst, src
	OpXorRR  // xor dst, src
	OpShlRR  // shl dst, src
	OpShrRR  // shr dst, src        (logical)
	OpCmpRR  // cmp a, b            (sets flags from a-b)
	OpTestRR // test a, b           (sets flags from a&b)

	// ALU, register-immediate (imm32, sign-extended).
	OpAddRI // add dst, imm32
	OpSubRI // sub dst, imm32
	OpMulRI // mul dst, imm32
	OpAndRI // and dst, imm32
	OpOrRI  // or dst, imm32
	OpXorRI // xor dst, imm32
	OpShlRI // shl dst, imm32
	OpShrRI // shr dst, imm32
	OpCmpRI // cmp a, imm32

	// ALU, unary.
	OpNeg // neg dst
	OpNot // not dst

	// Direct control transfers (rel32, relative to the next instruction).
	OpJmp  // jmp rel32
	OpJe   // je rel32   (ZF)
	OpJne  // jne rel32  (!ZF)
	OpJl   // jl rel32   (signed <)
	OpJle  // jle rel32  (signed <=)
	OpJg   // jg rel32   (signed >)
	OpJge  // jge rel32  (signed >=)
	OpJb   // jb rel32   (unsigned <)
	OpJae  // jae rel32  (unsigned >=)
	OpLoop // loop rel32 (r1 -= 1; branch if r1 != 0)
	OpCall // call rel32 (pushes the return address)

	// Indirect control transfers.
	OpJmpR  // jmp reg      register-based; must be cfi_guard-ed
	OpCallR // call reg     register-based; must be cfi_guard-ed
	OpJmpM  // jmp mem      memory-based; the verifier rejects it
	OpCallM // call mem     memory-based; the verifier rejects it
	OpRet   // ret          return-based; the verifier rejects it
	OpRetI  // ret imm16    return-based; the verifier rejects it

	// MPX bound checks. The check compares a 64-bit value (a register, or
	// the *effective address* of a memory operand) against a bound
	// register, raising #BR on violation. These are the building blocks
	// of the paper's mem_guard and cfi_guard pseudo-instructions.
	OpBndCL  // bndcl bnd, reg    #BR if reg < bnd.Lower
	OpBndCU  // bndcu bnd, reg    #BR if reg > bnd.Upper
	OpBndCLM // bndcl bnd, mem    #BR if ea(mem) < bnd.Lower (no access)
	OpBndCUM // bndcu bnd, mem    #BR if ea(mem) > bnd.Upper (no access)

	// Dangerous MPX instructions (rejected by verifier Stage 2).
	OpBndMk  // bndmk bnd, mem    sets bnd to [ea, ea+disp]
	OpBndMov // bndmov bndDst, bndSrc

	// CFI label: a fixed 8-byte no-op. Bytes 0..3 are the CFIMagic
	// sequence; bytes 4..7 are the domain ID, rewritten by the LibOS
	// loader when the binary is loaded into a domain.
	OpCFILabel

	// Miscellaneous.
	OpNop  // nop
	OpHalt // halt: stops the hart (privileged; rejected by Stage 2)
	OpTrap // trap: enters the LibOS syscall gate (rejected by Stage 2;
	// only the loader-injected trampoline may contain it)

	// Dangerous SGX instructions (rejected by verifier Stage 2).
	OpEExit   // eexit: leave the enclave
	OpEAccept // eaccept: accept an enclave page permission change
	OpEModPE  // emodpe: extend enclave page permissions

	// Dangerous miscellaneous instructions (rejected by Stage 2).
	OpXRstor   // xrstor: restores extended CPU state (can disable MPX)
	OpWrFSBase // wrfsbase reg: writes the FS segment base
	OpWrGSBase // wrgsbase reg: writes the GS segment base

	// Vector scatter with a vector-SIB operand (rejected by Stage 4:
	// one instruction touching multiple non-contiguous locations).
	OpVScatter // vscatter mem, src

	opMax // sentinel; not a real opcode
)

// NumOps is the number of defined opcodes (including OpInvalid).
const NumOps = int(opMax)

// Format describes the operand bytes that follow an opcode byte.
type Format uint8

// Instruction formats.
const (
	FNone  Format = iota // no operands
	FR                   // reg
	FRR                  // reg, reg
	FRI64                // reg, imm64
	FRI32                // reg, imm32
	FI32                 // imm32
	FI16                 // imm16
	FRel32               // rel32 branch displacement
	FRMem                // reg, mem
	FMemR                // mem, reg
	FBR                  // bnd, reg
	FBMem                // bnd, mem
	FBB                  // bnd, bnd
	FCFI                 // cfi_label: 3 magic bytes + 4 ID bytes
)

// memRefLen is the encoded size of a MemRef operand:
// base, index, scale, disp[4].
const memRefLen = 7

// CFILabelLen is the fixed encoded length of a cfi_label instruction.
const CFILabelLen = 8

// CFIMagic is the first four bytes of every encoded cfi_label. Per the
// paper's "nonexistence" property, this sequence must not appear anywhere
// else in instrumented code; the assembler enforces that when encoding.
var CFIMagic = [4]byte{byte(OpCFILabel), 0xC7, 0x1F, 0x0B}

var opInfo = [NumOps]struct {
	name   string
	format Format
}{
	OpInvalid:  {"invalid", FNone},
	OpMovRI:    {"movri", FRI64},
	OpMovRR:    {"mov", FRR},
	OpLoad:     {"load", FRMem},
	OpStore:    {"store", FMemR},
	OpLoadB:    {"loadb", FRMem},
	OpStoreB:   {"storeb", FMemR},
	OpLea:      {"lea", FRMem},
	OpPush:     {"push", FR},
	OpPushI:    {"pushi", FI32},
	OpPop:      {"pop", FR},
	OpAddRR:    {"add", FRR},
	OpSubRR:    {"sub", FRR},
	OpMulRR:    {"mul", FRR},
	OpDivRR:    {"div", FRR},
	OpModRR:    {"mod", FRR},
	OpAndRR:    {"and", FRR},
	OpOrRR:     {"or", FRR},
	OpXorRR:    {"xor", FRR},
	OpShlRR:    {"shl", FRR},
	OpShrRR:    {"shr", FRR},
	OpCmpRR:    {"cmp", FRR},
	OpTestRR:   {"test", FRR},
	OpAddRI:    {"addi", FRI32},
	OpSubRI:    {"subi", FRI32},
	OpMulRI:    {"muli", FRI32},
	OpAndRI:    {"andi", FRI32},
	OpOrRI:     {"ori", FRI32},
	OpXorRI:    {"xori", FRI32},
	OpShlRI:    {"shli", FRI32},
	OpShrRI:    {"shri", FRI32},
	OpCmpRI:    {"cmpi", FRI32},
	OpNeg:      {"neg", FR},
	OpNot:      {"not", FR},
	OpJmp:      {"jmp", FRel32},
	OpJe:       {"je", FRel32},
	OpJne:      {"jne", FRel32},
	OpJl:       {"jl", FRel32},
	OpJle:      {"jle", FRel32},
	OpJg:       {"jg", FRel32},
	OpJge:      {"jge", FRel32},
	OpJb:       {"jb", FRel32},
	OpJae:      {"jae", FRel32},
	OpLoop:     {"loop", FRel32},
	OpCall:     {"call", FRel32},
	OpJmpR:     {"jmpr", FR},
	OpCallR:    {"callr", FR},
	OpJmpM:     {"jmpm", FRMem}, // reg ignored
	OpCallM:    {"callm", FRMem},
	OpRet:      {"ret", FNone},
	OpRetI:     {"reti", FI16},
	OpBndCL:    {"bndcl", FBR},
	OpBndCU:    {"bndcu", FBR},
	OpBndCLM:   {"bndclm", FBMem},
	OpBndCUM:   {"bndcum", FBMem},
	OpBndMk:    {"bndmk", FBMem},
	OpBndMov:   {"bndmov", FBB},
	OpCFILabel: {"cfi_label", FCFI},
	OpNop:      {"nop", FNone},
	OpHalt:     {"halt", FNone},
	OpTrap:     {"trap", FNone},
	OpEExit:    {"eexit", FNone},
	OpEAccept:  {"eaccept", FNone},
	OpEModPE:   {"emodpe", FNone},
	OpXRstor:   {"xrstor", FNone},
	OpWrFSBase: {"wrfsbase", FR},
	OpWrGSBase: {"wrgsbase", FR},
	OpVScatter: {"vscatter", FMemR},
}

// Valid reports whether op is a defined opcode other than OpInvalid.
func (op Op) Valid() bool { return op > OpInvalid && op < opMax }

// Format returns the operand format of op.
func (op Op) Format() Format {
	if !op.Valid() {
		return FNone
	}
	return opInfo[op].format
}

// String returns the mnemonic of op.
func (op Op) String() string {
	if op >= opMax {
		return "op?"
	}
	return opInfo[op].name
}

// EvalCond evaluates the branch condition of a flag-based conditional
// branch against the comparison flags: zf (equal), lts (signed less),
// ltu (unsigned less). It reports false for every other opcode,
// including loop, whose condition is register- rather than flag-based.
// This is the reference definition of branch semantics: the
// interpreter's switch dispatch defers to it directly, while the
// compiled per-op handlers are hand-specialized for speed and pinned
// to it by exhaustive tests (vm's TestCompiledBranchesMatchEvalCond
// and TestFusedCmpBranchMatchesUnfused).
func (op Op) EvalCond(zf, lts, ltu bool) bool {
	switch op {
	case OpJe:
		return zf
	case OpJne:
		return !zf
	case OpJl:
		return lts
	case OpJle:
		return lts || zf
	case OpJg:
		return !lts && !zf
	case OpJge:
		return !lts
	case OpJb:
		return ltu
	case OpJae:
		return !ltu
	}
	return false
}

// IsDirectBranch reports whether op is a direct (rel32) control transfer.
func (op Op) IsDirectBranch() bool {
	switch op {
	case OpJmp, OpJe, OpJne, OpJl, OpJle, OpJg, OpJge, OpJb, OpJae, OpLoop, OpCall:
		return true
	}
	return false
}

// IsCondBranch reports whether op is a conditional direct branch (one that
// falls through when not taken).
func (op Op) IsCondBranch() bool {
	switch op {
	case OpJe, OpJne, OpJl, OpJle, OpJg, OpJge, OpJb, OpJae, OpLoop:
		return true
	}
	return false
}

// IsRegIndirect reports whether op is a register-based indirect control
// transfer (the category that MMDSFI guards with cfi_guard).
func (op Op) IsRegIndirect() bool { return op == OpJmpR || op == OpCallR }

// IsMemIndirect reports whether op is a memory-based indirect control
// transfer (rejected by the verifier).
func (op Op) IsMemIndirect() bool { return op == OpJmpM || op == OpCallM }

// IsReturn reports whether op is a return-based indirect control transfer
// (rejected by the verifier; the toolchain rewrites returns).
func (op Op) IsReturn() bool { return op == OpRet || op == OpRetI }

// IsControlTransfer reports whether op transfers control anywhere other
// than the next instruction.
func (op Op) IsControlTransfer() bool {
	return op.IsDirectBranch() || op.IsRegIndirect() || op.IsMemIndirect() || op.IsReturn()
}

// IsUncondTransfer reports whether execution can never fall through to the
// instruction after op.
func (op Op) IsUncondTransfer() bool {
	switch op {
	case OpJmp, OpJmpR, OpJmpM, OpRet, OpRetI, OpHalt, OpEExit:
		return true
	}
	return false
}

// EndsBlock reports whether op terminates a basic block for straight-line
// decode: every control transfer, plus the instructions that
// unconditionally stop the hart when executed — trap/halt/eexit and the
// SGX 2.0 instructions that raise #UD under the SGX 1.0 model. The vm's
// translation cache decodes forward from a block head until the first
// instruction for which this reports true.
func (op Op) EndsBlock() bool {
	if op.IsControlTransfer() {
		return true
	}
	switch op {
	case OpTrap, OpHalt, OpEExit, OpEAccept, OpEModPE:
		return true
	}
	return false
}

// IsDangerous reports whether Stage 2 of the verifier must reject op: the
// SGX, MPX-mutating and miscellaneous privileged instructions of the
// paper's §5 plus the LibOS syscall gate.
func (op Op) IsDangerous() bool {
	switch op {
	case OpEExit, OpEAccept, OpEModPE, // SGX
		OpBndMk, OpBndMov, // MPX bound mutation
		OpXRstor, OpWrFSBase, OpWrGSBase, // misc privileged
		OpHalt, OpTrap: // hart control / syscall gate
		return true
	}
	return false
}

// MemKind classifies how an instruction uses its memory operand.
type MemKind uint8

// Memory-operand use classes.
const (
	MemNone    MemKind = iota // no memory operand
	MemLoad                   // reads memory at the effective address
	MemStore                  // writes memory at the effective address
	MemAddr                   // computes the address only (lea, bound checks)
	MemScatter                // vector scatter: multiple addresses
)

// MemUse returns how op uses its memory operand, and the access size in
// bytes for loads and stores.
func (op Op) MemUse() (kind MemKind, size int) {
	switch op {
	case OpLoad:
		return MemLoad, 8
	case OpLoadB:
		return MemLoad, 1
	case OpStore:
		return MemStore, 8
	case OpStoreB:
		return MemStore, 1
	case OpJmpM, OpCallM:
		return MemLoad, 8
	case OpLea, OpBndCLM, OpBndCUM, OpBndMk:
		return MemAddr, 0
	case OpVScatter:
		return MemScatter, 8
	}
	return MemNone, 0
}

// HasImplicitStackAccess reports whether op implicitly accesses memory
// through the stack pointer (the paper's "implicit register-based"
// category in Figure 4). Size is always 8.
func (op Op) HasImplicitStackAccess() (MemKind, bool) {
	switch op {
	case OpPush, OpPushI, OpCall:
		return MemStore, true
	case OpPop, OpRet, OpRetI:
		return MemLoad, true
	}
	return MemNone, false
}
