package linuxsim

import (
	"errors"
	"runtime"
	"sync"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/libos"
	"repro/internal/mem"
	"repro/internal/sysdispatch"
)

// loadTrampoline writes the syscall gate page at the base of the address
// space. Linux has no MMDSFI domains, so the cfi_label domain ID is 0.
func loadTrampoline(as *mem.Paged, base uint64) error {
	return as.WriteDirect(base, libos.EncodeTrampoline(0))
}

func setupStack(p *Proc, as *mem.Paged, base uint64, img *asm.Image, argv []string,
	dataBase, dataSize, stackSize uint64, heapBase, heapEnd *uint64) error {
	hb, he, err := libos.SetupUserStack(as, p.cpu, base, dataBase, dataSize,
		stackSize, img.MinDataSize(), argv)
	if err != nil {
		return err
	}
	*heapBase, *heapEnd = hb, he
	p.cpu.PC = base + mem.PageSize + uint64(img.Entry)
	return nil
}

// sysTable is the native baseline's registration into the shared syscall
// spine. Where the LibOS parks, the baseline blocks: each native process
// owns a goroutine (kernel threads are cheap outside an enclave), so the
// spine's blocking read/write/wait handlers apply directly. Signals are
// not modeled, so SysKill/SysSigact/SysSigret stay unregistered and
// answer -ENOSYS from the table. Built lazily: the handlers close over
// Spawn, whose process loop dispatches through the table, and a package
// initializer would make that reference cycle ill-formed.
var (
	sysTableOnce sync.Once
	sysTableVal  *sysdispatch.Table
)

func sysTable() *sysdispatch.Table {
	sysTableOnce.Do(func() { sysTableVal = newSysTable() })
	return sysTableVal
}

var errNoFile = errors.New("linuxsim: no such file")

func newSysTable() *sysdispatch.Table {
	t := sysdispatch.NewTable()
	t.Register(libos.SysExit, sysdispatch.ExitHandler(func(k sysdispatch.Kernel, status int) {
		k.(*Proc).exit(status)
	}))
	t.Register(libos.SysWrite, sysdispatch.BlockingWrite)
	t.Register(libos.SysSend, sysdispatch.BlockingWrite)
	t.Register(libos.SysRead, sysdispatch.BlockingRead)
	t.Register(libos.SysRecv, sysdispatch.BlockingRead)
	t.Register(libos.SysWritev, sysdispatch.BlockingWritev)
	t.Register(libos.SysReadv, sysdispatch.BlockingReadv)
	t.Register(libos.SysOpen, sysdispatch.OpenHandler(func(k sysdispatch.Kernel, path string, flags uint64) (sysdispatch.File, int64) {
		of, err := k.(*Proc).l.openPlain(path, int(flags))
		if err != nil {
			return nil, libos.ENOENT
		}
		return of, 0
	}))
	t.Register(libos.SysClose, sysdispatch.CloseFD)
	t.Register(libos.SysSpawn, sysdispatch.SpawnHandler(func(k sysdispatch.Kernel, path string, argv []string) int64 {
		p := k.(*Proc)
		child, err := p.l.Spawn(path, argv, SpawnOpt{Parent: p})
		if err != nil {
			return -libos.ENOENT
		}
		return int64(child.pid)
	}))
	t.Register(libos.SysWait4, sysdispatch.Wait4Handler(func(k sysdispatch.Kernel, pid int) (int, int, int64, bool) {
		cpid, status, errno := k.(*Proc).wait4(pid)
		return cpid, status, int64(errno), false
	}))
	t.Register(libos.SysPipe2, sysdispatch.Pipe2Handler(func(sysdispatch.Kernel) (sysdispatch.File, sysdispatch.File) {
		r, w := libos.NewPipe()
		return r, w
	}))
	t.Register(libos.SysDup2, sysdispatch.Dup2FD)
	t.Register(libos.SysGetpid, sysdispatch.Getpid)
	t.Register(libos.SysGetppid, sysdispatch.Getppid)
	t.Register(libos.SysMmap, func(k sysdispatch.Kernel, a *[5]uint64) sysdispatch.Result {
		p := k.(*Proc)
		length := (a[0] + 4095) &^ 4095
		if p.heapPtr+length > p.heapEnd {
			return sysdispatch.Errno(libos.ENOMEM)
		}
		addr := p.heapPtr
		p.heapPtr += length
		return sysdispatch.Ok(int64(addr))
	})
	t.Register(libos.SysMunmap, sysdispatch.Munmap)
	t.Register(libos.SysFutex, func(k sysdispatch.Kernel, a *[5]uint64) sysdispatch.Result {
		return sysdispatch.Ok(k.(*Proc).sysFutex(a[0], a[1], a[2]))
	})
	t.Register(libos.SysSocket, sysdispatch.SocketHandler(func(sysdispatch.Kernel) sysdispatch.File {
		return libos.NewSocketFile()
	}))
	t.Register(libos.SysBind, withOF(func(p *Proc, of *libos.OpenFile, a *[5]uint64) int64 {
		if err := of.BindHost(p.l.host, uint16(a[1])); err != nil {
			return -libos.EACCES
		}
		return 0
	}))
	t.Register(libos.SysListen, sysdispatch.Listen)
	t.Register(libos.SysAccept, withOF(func(p *Proc, of *libos.OpenFile, _ *[5]uint64) int64 {
		nf, err := of.AcceptHost()
		if err != nil {
			return -libos.EIO
		}
		return int64(p.fds.Install(nf))
	}))
	t.Register(libos.SysConnect, withOF(func(p *Proc, of *libos.OpenFile, a *[5]uint64) int64 {
		if err := of.ConnectHost(p.l.host, uint16(a[1])); err != nil {
			return -libos.ECONNREFUSED
		}
		return 0
	}))
	t.Register(libos.SysLseek, sysdispatch.Lseek)
	t.Register(libos.SysClock, sysdispatch.Clock)
	t.Register(libos.SysYield, func(sysdispatch.Kernel, *[5]uint64) sysdispatch.Result {
		runtime.Gosched()
		return sysdispatch.Ok(0)
	})
	t.Register(libos.SysFsync, func(sysdispatch.Kernel, *[5]uint64) sysdispatch.Result {
		return sysdispatch.Ok(0) // plaintext FS: no deferred integrity state
	})
	t.Register(libos.SysRename, func(k sysdispatch.Kernel, a *[5]uint64) sysdispatch.Result {
		oldp, ok := sysdispatch.ReadPath(k, a[0], a[1])
		if !ok {
			return sysdispatch.Errno(libos.EFAULT)
		}
		newp, ok := sysdispatch.ReadPath(k, a[2], a[3])
		if !ok {
			return sysdispatch.Errno(libos.EFAULT)
		}
		if err := k.(*Proc).l.renamePlain(oldp, newp); err != nil {
			return sysdispatch.Errno(libos.ENOENT)
		}
		return sysdispatch.Ok(0)
	})
	return t
}

// withOF adapts a handler over the baseline's socket descriptions
// (which are libos.OpenFile, shared with the LibOS fd layer).
func withOF(f func(p *Proc, of *libos.OpenFile, a *[5]uint64) int64) sysdispatch.Handler {
	return func(k sysdispatch.Kernel, a *[5]uint64) sysdispatch.Result {
		p := k.(*Proc)
		file, ok := p.fds.Get(int(int64(a[0])))
		if !ok {
			return sysdispatch.Errno(libos.EBADF)
		}
		of, ok := file.(*libos.OpenFile)
		if !ok {
			return sysdispatch.Errno(libos.EBADF)
		}
		return sysdispatch.Ok(f(p, of, a))
	}
}

// syscall dispatches one trap through the shared table. Returns true
// when the process exited.
func (p *Proc) syscall() bool {
	// Pop the return address (no cfi_label requirement on native Linux).
	sp := p.cpu.Regs[isa.SP]
	retAddr, f := p.cpu.Mem.Load(sp, 8)
	if f != nil {
		p.exit(128 + libos.SIGSEGV)
		return true
	}
	p.cpu.Regs[isa.SP] = sp + 8

	a := [5]uint64{
		p.cpu.Regs[isa.R1], p.cpu.Regs[isa.R2], p.cpu.Regs[isa.R3],
		p.cpu.Regs[isa.R4], p.cpu.Regs[isa.R5],
	}
	res := sysTable().Dispatch(p, p.cpu.Regs[isa.R0], &a)
	if res.Exited {
		return true
	}
	p.cpu.Regs[isa.R0] = uint64(res.Ret)
	p.cpu.PC = retAddr
	return false
}

func (p *Proc) wait4(pid int) (int, int, int) {
	l := p.l
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		found := false
		for cpid, c := range l.procs {
			if c.ppid != p.pid {
				continue
			}
			if pid >= 0 && cpid != pid {
				continue
			}
			found = true
			if c.exited {
				delete(l.procs, cpid)
				return cpid, c.status, 0
			}
		}
		if !found {
			return 0, 0, libos.ECHILD
		}
		l.procCond.Wait()
	}
}

func (p *Proc) sysFutex(op, addr, val uint64) int64 {
	switch op {
	case libos.FutexWait:
		cur, f := p.cpu.Mem.Load(addr, 8)
		if f != nil {
			return -libos.EFAULT
		}
		if cur != val {
			return -libos.EAGAIN
		}
		p.l.host.FutexWait(addr)
		return 0
	case libos.FutexWake:
		return int64(p.l.host.FutexWake(addr, int(val)))
	}
	return -libos.EINVAL
}

// renamePlain moves a plaintext file (the flat-namespace rename of the
// baseline's map-backed "ext4").
func (l *Linux) renamePlain(oldp, newp string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	f, ok := l.files[oldp]
	if !ok {
		return errNoFile
	}
	if oldp == newp {
		return nil // rename to self is a legal no-op, not a delete
	}
	l.files[newp] = f
	delete(l.files, oldp)
	delete(l.binCache, oldp)
	delete(l.binCache, newp)
	return nil
}

// openPlain opens a plaintext file (the "ext4" of the baseline).
func (l *Linux) openPlain(path string, flags int) (*libos.OpenFile, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.files[path]
	if !ok {
		if flags&libos.OCreate == 0 {
			return nil, errNoFile
		}
		l.files[path] = nil
	}
	if flags&libos.OTrunc != 0 {
		l.files[path] = nil
	}
	return libos.OpenNodeFile(&plainNode{l: l, path: path}, 0x2 /* rdwr */), nil
}

// plainNode adapts a map-backed file to the fs.Node interface.
type plainNode struct {
	l    *Linux
	path string
}

func (n *plainNode) ReadAt(p []byte, off int64) (int, error) {
	n.l.mu.Lock()
	defer n.l.mu.Unlock()
	f := n.l.files[n.path]
	if off >= int64(len(f)) {
		return 0, nil
	}
	return copy(p, f[off:]), nil
}

func (n *plainNode) WriteAt(p []byte, off int64) (int, error) {
	n.l.mu.Lock()
	defer n.l.mu.Unlock()
	f := n.l.files[n.path]
	if need := int(off) + len(p); need > len(f) {
		if need > cap(f) {
			nf := make([]byte, need, max(need, 2*cap(f)))
			copy(nf, f)
			f = nf
		} else {
			f = f[:need]
		}
	}
	copy(f[off:], p)
	n.l.files[n.path] = f
	delete(n.l.binCache, n.path)
	return len(p), nil
}

func (n *plainNode) Size() int64 {
	n.l.mu.Lock()
	defer n.l.mu.Unlock()
	return int64(len(n.l.files[n.path]))
}

func (n *plainNode) Close() error { return nil }
