package linuxsim

import (
	"encoding/binary"
	"errors"
	"io"
	"runtime"
	"time"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/libos"
	"repro/internal/mem"
	"repro/internal/oelf"
	"repro/internal/vm"
)

// loadTrampoline writes the syscall gate page at the base of the address
// space. Linux has no MMDSFI domains, so the cfi_label domain ID is 0.
func loadTrampoline(as *mem.Paged, base uint64) error {
	return as.WriteDirect(base, libos.EncodeTrampoline(0))
}

func setupStack(p *Proc, as *mem.Paged, base uint64, img *asm.Image, argv []string,
	dataBase, dataSize, stackSize uint64, heapBase, heapEnd *uint64) error {
	hb, he, err := libos.SetupUserStack(as, p.cpu, base, dataBase, dataSize,
		stackSize, img.MinDataSize(), argv)
	if err != nil {
		return err
	}
	*heapBase, *heapEnd = hb, he
	p.cpu.PC = base + mem.PageSize + uint64(img.Entry)
	return nil
}

// syscall dispatches one trap. Returns true when the process exited.
func (p *Proc) syscall() bool {
	// Pop the return address (no cfi_label requirement on native Linux).
	sp := p.cpu.Regs[isa.SP]
	retAddr, f := p.cpu.Mem.Load(sp, 8)
	if f != nil {
		p.exit(128 + libos.SIGSEGV)
		return true
	}
	p.cpu.Regs[isa.SP] = sp + 8

	no := p.cpu.Regs[isa.R0]
	a1, a2, a3 := p.cpu.Regs[isa.R1], p.cpu.Regs[isa.R2], p.cpu.Regs[isa.R3]
	a4 := p.cpu.Regs[isa.R4]

	var ret int64
	switch no {
	case libos.SysExit:
		p.exit(int(int64(a1)) & 0xFF)
		return true
	case libos.SysWrite, libos.SysSend:
		ret = p.rw(int(int64(a1)), a2, a3, true)
	case libos.SysRead, libos.SysRecv:
		ret = p.rw(int(int64(a1)), a2, a3, false)
	case libos.SysOpen:
		ret = p.sysOpen(a1, a2, int(a3))
	case libos.SysClose:
		ret = p.sysClose(int(int64(a1)))
	case libos.SysSpawn:
		ret = p.sysSpawn(a1, a2, a3, a4)
	case libos.SysWait4:
		pid, status, errno := p.wait4(int(int64(a1)))
		if errno != 0 {
			ret = -int64(errno)
		} else {
			if a2 != 0 {
				var b [8]byte
				binary.LittleEndian.PutUint64(b[:], uint64(status))
				_ = p.cpu.Mem.WriteAt(a2, b[:])
			}
			ret = int64(pid)
		}
	case libos.SysPipe2:
		r, w := libos.NewPipe()
		rfd, wfd := p.installFD(r), p.installFD(w)
		var b [16]byte
		binary.LittleEndian.PutUint64(b[0:], uint64(rfd))
		binary.LittleEndian.PutUint64(b[8:], uint64(wfd))
		if f := p.cpu.Mem.WriteAt(a1, b[:]); f != nil {
			ret = -libos.EFAULT
		}
	case libos.SysDup2:
		ret = p.sysDup2(int(int64(a1)), int(int64(a2)))
	case libos.SysGetpid:
		ret = int64(p.pid)
	case libos.SysGetppid:
		ret = int64(p.ppid)
	case libos.SysMmap:
		length := (a1 + 4095) &^ 4095
		if p.heapPtr+length > p.heapEnd {
			ret = -libos.ENOMEM
		} else {
			addr := p.heapPtr
			p.heapPtr += length
			ret = int64(addr)
		}
	case libos.SysMunmap:
		ret = 0
	case libos.SysFutex:
		ret = p.sysFutex(a1, a2, a3)
	case libos.SysSocket:
		ret = int64(p.installFD(libos.NewSocketFile()))
	case libos.SysBind:
		ret = p.withFD(int(int64(a1)), func(of *libos.OpenFile) int64 {
			if err := of.BindHost(p.l.host, uint16(a2)); err != nil {
				return -libos.EACCES
			}
			return 0
		})
	case libos.SysListen:
		ret = 0
	case libos.SysAccept:
		ret = p.withFD(int(int64(a1)), func(of *libos.OpenFile) int64 {
			nf, err := of.AcceptHost()
			if err != nil {
				return -libos.EIO
			}
			return int64(p.installFD(nf))
		})
	case libos.SysConnect:
		ret = p.withFD(int(int64(a1)), func(of *libos.OpenFile) int64 {
			if err := of.ConnectHost(p.l.host, uint16(a2)); err != nil {
				return -libos.ECONNREFUSED
			}
			return 0
		})
	case libos.SysLseek:
		ret = p.withFD(int(int64(a1)), func(of *libos.OpenFile) int64 {
			off, err := of.Seek(int64(a2), int(int64(a3)))
			if err != nil {
				return -libos.ESPIPE
			}
			return off
		})
	case libos.SysClock:
		ret = time.Now().UnixNano()
	case libos.SysYield:
		runtime.Gosched()
	case libos.SysFsync:
		ret = 0
	case libos.SysKill:
		ret = -libos.ENOSYS // the baseline does not model signals
	default:
		ret = -libos.ENOSYS
	}
	p.cpu.Regs[isa.R0] = uint64(ret)
	p.cpu.PC = retAddr
	return false
}

func (p *Proc) withFD(fd int, f func(*libos.OpenFile) int64) int64 {
	p.fdmu.Lock()
	of, ok := p.fds[fd]
	p.fdmu.Unlock()
	if !ok {
		return -libos.EBADF
	}
	return f(of)
}

func (p *Proc) installFD(of *libos.OpenFile) int {
	p.fdmu.Lock()
	defer p.fdmu.Unlock()
	fd := 3
	for {
		if _, used := p.fds[fd]; !used {
			break
		}
		fd++
	}
	p.fds[fd] = of
	return fd
}

func (p *Proc) rw(fd int, buf, n uint64, write bool) int64 {
	if n > 1<<20 {
		return -libos.EINVAL
	}
	p.fdmu.Lock()
	of, ok := p.fds[fd]
	p.fdmu.Unlock()
	if !ok {
		return -libos.EBADF
	}
	if write {
		data, err := p.cpu.Mem.ReadDirect(buf, int(n))
		if err != nil {
			return -libos.EFAULT
		}
		wn, werr := of.Write(append([]byte(nil), data...))
		if werr != nil && wn == 0 {
			return -libos.EPIPE
		}
		return int64(wn)
	}
	tmp := make([]byte, n)
	rn, err := of.Read(tmp)
	if err != nil && err != io.EOF && rn == 0 {
		return -libos.EIO
	}
	if rn > 0 {
		if f := p.cpu.Mem.WriteAt(buf, tmp[:rn]); f != nil {
			return -libos.EFAULT
		}
	}
	return int64(rn)
}

func (p *Proc) sysOpen(pathPtr, pathLen uint64, flags int) int64 {
	path, err := p.cpu.Mem.ReadDirect(pathPtr, int(pathLen))
	if err != nil {
		return -libos.EFAULT
	}
	of, oerr := p.l.openPlain(string(path), flags)
	if oerr != nil {
		return -libos.ENOENT
	}
	return int64(p.installFD(of))
}

// openPlain opens a plaintext file (the "ext4" of the baseline).
func (l *Linux) openPlain(path string, flags int) (*libos.OpenFile, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.files[path]
	if !ok {
		if flags&libos.OCreate == 0 {
			return nil, errors.New("no such file")
		}
		l.files[path] = nil
	}
	if flags&libos.OTrunc != 0 {
		l.files[path] = nil
	}
	return libos.OpenNodeFile(&plainNode{l: l, path: path}, 0x2 /* rdwr */), nil
}

// plainNode adapts a map-backed file to the fs.Node interface.
type plainNode struct {
	l    *Linux
	path string
}

func (n *plainNode) ReadAt(p []byte, off int64) (int, error) {
	n.l.mu.Lock()
	defer n.l.mu.Unlock()
	f := n.l.files[n.path]
	if off >= int64(len(f)) {
		return 0, nil
	}
	return copy(p, f[off:]), nil
}

func (n *plainNode) WriteAt(p []byte, off int64) (int, error) {
	n.l.mu.Lock()
	defer n.l.mu.Unlock()
	f := n.l.files[n.path]
	if need := int(off) + len(p); need > len(f) {
		if need > cap(f) {
			nf := make([]byte, need, max(need, 2*cap(f)))
			copy(nf, f)
			f = nf
		} else {
			f = f[:need]
		}
	}
	copy(f[off:], p)
	n.l.files[n.path] = f
	delete(n.l.binCache, n.path)
	return len(p), nil
}

func (n *plainNode) Size() int64 {
	n.l.mu.Lock()
	defer n.l.mu.Unlock()
	return int64(len(n.l.files[n.path]))
}

func (n *plainNode) Close() error { return nil }

func (p *Proc) sysClose(fd int) int64 {
	p.fdmu.Lock()
	of, ok := p.fds[fd]
	if ok {
		delete(p.fds, fd)
	}
	p.fdmu.Unlock()
	if !ok {
		return -libos.EBADF
	}
	of.Unref()
	return 0
}

func (p *Proc) sysDup2(oldfd, newfd int) int64 {
	p.fdmu.Lock()
	defer p.fdmu.Unlock()
	of, ok := p.fds[oldfd]
	if !ok {
		return -libos.EBADF
	}
	if oldfd == newfd {
		return int64(newfd)
	}
	if old, exists := p.fds[newfd]; exists {
		old.Unref()
	}
	of.Ref()
	p.fds[newfd] = of
	return int64(newfd)
}

func (p *Proc) sysSpawn(pathPtr, pathLen, argvPtr, argvLen uint64) int64 {
	path, err := p.cpu.Mem.ReadDirect(pathPtr, int(pathLen))
	if err != nil {
		return -libos.EFAULT
	}
	var argv []string
	if argvLen > 0 {
		block, err := p.cpu.Mem.ReadDirect(argvPtr, int(argvLen))
		if err != nil {
			return -libos.EFAULT
		}
		start := 0
		for i, b := range block {
			if b == 0 {
				argv = append(argv, string(block[start:i]))
				start = i + 1
			}
		}
	}
	child, serr := p.l.Spawn(string(path), argv, SpawnOpt{Parent: p})
	if serr != nil {
		return -libos.ENOENT
	}
	return int64(child.pid)
}

func (p *Proc) wait4(pid int) (int, int, int) {
	l := p.l
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		found := false
		for cpid, c := range l.procs {
			if c.ppid != p.pid {
				continue
			}
			if pid >= 0 && cpid != pid {
				continue
			}
			found = true
			if c.exited {
				delete(l.procs, cpid)
				return cpid, c.status, 0
			}
		}
		if !found {
			return 0, 0, libos.ECHILD
		}
		l.procCond.Wait()
	}
}

func (p *Proc) sysFutex(op, addr, val uint64) int64 {
	switch op {
	case libos.FutexWait:
		cur, f := p.cpu.Mem.Load(addr, 8)
		if f != nil {
			return -libos.EFAULT
		}
		if cur != val {
			return -libos.EAGAIN
		}
		p.l.host.FutexWait(addr)
		return 0
	case libos.FutexWake:
		return int64(p.l.host.FutexWake(addr, int(val)))
	}
	return -libos.EINVAL
}

var _ = vm.StopTrap
var _ = oelf.Magic
