// Package linuxsim is the native-Linux baseline of the paper's
// evaluation: the same OVM programs and syscall ABI, but with no enclave,
// no MMDSFI instrumentation, a plaintext filesystem ("ext4"), and cheap
// process creation backed by a binary page cache (the analog of demand
// paging, which makes Linux's spawn time insensitive to binary size —
// Figure 6a).
package linuxsim

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/asm"
	"repro/internal/hostos"
	"repro/internal/libos"
	"repro/internal/mem"
	"repro/internal/oelf"
	"repro/internal/sysdispatch"
	"repro/internal/vm"
)

// Linux is one simulated native kernel.
type Linux struct {
	host *hostos.Host

	mu       sync.Mutex
	procCond *sync.Cond
	files    map[string][]byte       // plaintext "ext4"
	binCache map[string]*oelf.Binary // page cache of parsed binaries
	procs    map[int]*Proc
	nextPID  int

	// Config
	stackSize uint64
	heapSize  uint64
	slice     uint64
}

// New creates a kernel over the given host network substrate.
func New(host *hostos.Host) *Linux {
	l := &Linux{
		host:      host,
		files:     make(map[string][]byte),
		binCache:  make(map[string]*oelf.Binary),
		procs:     make(map[int]*Proc),
		nextPID:   1,
		stackSize: 256 << 10,
		heapSize:  4 << 20,
		slice:     1 << 20,
	}
	l.procCond = sync.NewCond(&l.mu)
	return l
}

// Host returns the network substrate.
func (l *Linux) Host() *hostos.Host { return l.host }

// WriteFile installs a plaintext file.
func (l *Linux) WriteFile(path string, data []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.files[path] = append([]byte(nil), data...)
	delete(l.binCache, path)
}

// ReadFile reads a plaintext file.
func (l *Linux) ReadFile(path string) ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	f, ok := l.files[path]
	if !ok {
		return nil, fmt.Errorf("linuxsim: %s: no such file", path)
	}
	return append([]byte(nil), f...), nil
}

// InstallBinary writes a marshaled binary to the plain filesystem.
func (l *Linux) InstallBinary(path string, bin *oelf.Binary) {
	l.WriteFile(path, bin.Marshal())
}

// Proc is one native process.
type Proc struct {
	l    *Linux
	pid  int
	ppid int
	cpu  *vm.CPU

	fds *sysdispatch.FDTable

	heapBase, heapEnd, heapPtr uint64
	dataBase, dataSize         uint64

	exited bool
	status int
	done   chan struct{}
	cycles uint64
}

// PID returns the process ID.
func (p *Proc) PID() int { return p.pid }

// PPID returns the parent process ID.
func (p *Proc) PPID() int { return p.ppid }

// Cycles returns retired instructions.
func (p *Proc) Cycles() uint64 { return p.cycles }

// ReadUser implements sysdispatch.Kernel: native processes have no
// domain bounds, only page permissions.
func (p *Proc) ReadUser(addr, n uint64) ([]byte, error) {
	b, err := p.cpu.Mem.ReadDirect(addr, int(n))
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), b...), nil
}

// WriteUser implements sysdispatch.Kernel.
func (p *Proc) WriteUser(addr uint64, b []byte) error {
	if f := p.cpu.Mem.WriteAt(addr, b); f != nil {
		return errors.New("linuxsim: fault")
	}
	return nil
}

// FDs implements sysdispatch.Kernel.
func (p *Proc) FDs() *sysdispatch.FDTable { return p.fds }

// Wait blocks for exit and returns the status.
func (p *Proc) Wait() int {
	<-p.done
	return p.status
}

// SpawnOpt mirrors libos.SpawnOpt for the baseline.
type SpawnOpt struct {
	Parent                *Proc
	Stdin, Stdout, Stderr *libos.OpenFile
}

// lookupBinary consults the page cache, parsing at most once per file —
// the demand-paging analog that keeps Linux spawn time flat.
func (l *Linux) lookupBinary(path string) (*oelf.Binary, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if b, ok := l.binCache[path]; ok {
		return b, nil
	}
	raw, ok := l.files[path]
	if !ok {
		return nil, fmt.Errorf("linuxsim: %s: no such file", path)
	}
	b, err := oelf.Unmarshal(raw)
	if err != nil {
		return nil, err
	}
	l.binCache[path] = b
	return b, nil
}

// Spawn creates a process running the binary at path (posix_spawn via
// vfork+execve in the paper's measurements).
func (l *Linux) Spawn(path string, argv []string, opt SpawnOpt) (*Proc, error) {
	bin, err := l.lookupBinary(path)
	if err != nil {
		return nil, err
	}
	img := &bin.Image

	const base = 0x400000
	trampSpan := uint64(mem.PageSize)
	codeBase := uint64(base) + trampSpan
	dataBase := codeBase + img.CodeSpan() + uint64(img.GuardSize)
	dataSize := (img.MinDataSize() + l.heapSize + l.stackSize + mem.PageSize - 1) / mem.PageSize * mem.PageSize
	as := mem.NewPaged(base, trampSpan+img.CodeSpan()+uint64(img.GuardSize)+dataSize+mem.PageSize)

	if err := as.Map(base, trampSpan+img.CodeSpan(), mem.PermRX); err != nil {
		return nil, err
	}
	if err := loadTrampoline(as, base); err != nil {
		return nil, err
	}
	if err := as.WriteDirect(codeBase, img.Code); err != nil {
		return nil, err
	}
	if err := as.Map(dataBase, dataSize, mem.PermRW); err != nil {
		return nil, err
	}
	if err := as.WriteDirect(dataBase, img.Data); err != nil {
		return nil, err
	}

	l.mu.Lock()
	pid := l.nextPID
	l.nextPID++
	p := &Proc{
		l: l, pid: pid, cpu: vm.New(as),
		fds:      sysdispatch.NewFDTable(),
		dataBase: dataBase, dataSize: dataSize,
		done: make(chan struct{}),
	}
	if opt.Parent != nil {
		p.ppid = opt.Parent.pid
	}
	l.procs[pid] = p
	l.mu.Unlock()

	if opt.Parent != nil {
		p.fds.InheritFrom(opt.Parent.fds)
	} else {
		for i, of := range []*libos.OpenFile{opt.Stdin, opt.Stdout, opt.Stderr} {
			if of == nil {
				of = libos.NewDiscardFile()
			} else {
				of.Ref()
			}
			p.fds.Set(i, of)
		}
	}

	if err := setupStack(p, as, base, img, append([]string{path}, argv...),
		dataBase, dataSize, l.stackSize, &p.heapBase, &p.heapEnd); err != nil {
		return nil, err
	}
	p.heapPtr = p.heapBase

	go p.run()
	return p, nil
}

var errTooSmall = errors.New("linuxsim: address space too small")

func (p *Proc) run() {
	for {
		stop := p.cpu.Run(p.l.slice)
		p.cycles = p.cpu.Cycles
		switch stop.Reason {
		case vm.StopCycles, vm.StopPreempt:
			continue
		case vm.StopTrap:
			if p.syscall() {
				return
			}
		default:
			p.exit(128 + libos.SIGSEGV)
			return
		}
	}
}

func (p *Proc) exit(status int) {
	p.fds.CloseAll()
	l := p.l
	l.mu.Lock()
	p.exited = true
	p.status = status
	close(p.done)
	l.procCond.Broadcast()
	l.mu.Unlock()
}

// Procs returns live pids.
func (l *Linux) Procs() []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []int
	for pid, p := range l.procs {
		if !p.exited {
			out = append(out, pid)
		}
	}
	return out
}

// Sync is a no-op (plaintext FS has no deferred integrity state).
func (l *Linux) Sync() error { return nil }

var _ = asm.DefaultGuardSize // geometry shared with the toolchain
