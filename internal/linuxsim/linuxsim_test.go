package linuxsim_test

import (
	"bytes"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/hostos"
	"repro/internal/isa"
	"repro/internal/libos"
	"repro/internal/linuxsim"
	"repro/internal/ulib"
)

func buildProg(t testing.TB, f func(b *asm.Builder)) *asm.Program {
	t.Helper()
	b := asm.NewBuilder()
	f(b)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// install compiles (uninstrumented — native Linux runs plain binaries)
// and installs.
func install(t testing.TB, l *linuxsim.Linux, path string, prog *asm.Program) {
	t.Helper()
	tc := core.NewToolchain()
	bin, err := tc.CompileUnverified(path, prog)
	if err != nil {
		t.Fatal(err)
	}
	l.InstallBinary(path, bin)
}

func TestNativeHello(t *testing.T) {
	l := linuxsim.New(hostos.New())
	prog := buildProg(t, func(b *asm.Builder) {
		b.String("msg", "native hello\n")
		b.Entry("_start")
		ulib.Prologue(b)
		ulib.WriteStr(b, 1, "msg", 13)
		ulib.Exit(b, 5)
	})
	install(t, l, "/bin/hello", prog)

	var out bytes.Buffer
	p, err := l.Spawn("/bin/hello", nil, linuxsim.SpawnOpt{Stdout: libos.NewWriterFile(&out)})
	if err != nil {
		t.Fatal(err)
	}
	if status := p.Wait(); status != 5 {
		t.Fatalf("status = %d", status)
	}
	if out.String() != "native hello\n" {
		t.Fatalf("stdout = %q", out.String())
	}
}

func TestNativeSpawnChain(t *testing.T) {
	l := linuxsim.New(hostos.New())
	child := buildProg(t, func(b *asm.Builder) {
		b.String("msg", "child\n")
		b.Entry("_start")
		ulib.Prologue(b)
		ulib.WriteStr(b, 1, "msg", 6)
		ulib.Exit(b, 0)
	})
	install(t, l, "/bin/child", child)

	parent := buildProg(t, func(b *asm.Builder) {
		b.String("path", "/bin/child")
		b.Entry("_start")
		ulib.Prologue(b)
		ulib.SpawnPath(b, "path", 10, "", 0)
		b.MovRR(isa.R6, isa.R0)
		ulib.Wait4(b, isa.R6)
		ulib.Exit(b, 0)
	})
	install(t, l, "/bin/parent", parent)

	var out bytes.Buffer
	p, err := l.Spawn("/bin/parent", nil, linuxsim.SpawnOpt{Stdout: libos.NewWriterFile(&out)})
	if err != nil {
		t.Fatal(err)
	}
	if status := p.Wait(); status != 0 {
		t.Fatalf("status = %d", status)
	}
	if out.String() != "child\n" {
		t.Fatalf("stdout = %q", out.String())
	}
}

func TestNativeFileIO(t *testing.T) {
	l := linuxsim.New(hostos.New())
	prog := buildProg(t, func(b *asm.Builder) {
		b.String("path", "/tmp/f")
		b.String("content", "plaintext")
		b.Zero("buf", 16)
		b.Entry("_start")
		ulib.Prologue(b)
		ulib.OpenPath(b, "path", 6, libos.ORdWr|libos.OCreate)
		b.MovRR(isa.R6, isa.R0)
		b.MovRR(isa.R1, isa.R6)
		b.LeaData(isa.R2, "content")
		b.MovRI(isa.R3, 9)
		ulib.Syscall(b, libos.SysWrite)
		b.MovRR(isa.R1, isa.R6)
		b.MovRI(isa.R2, 0)
		b.MovRI(isa.R3, libos.SeekSet)
		ulib.Syscall(b, libos.SysLseek)
		b.MovRR(isa.R1, isa.R6)
		b.LeaData(isa.R2, "buf")
		b.MovRI(isa.R3, 9)
		ulib.Syscall(b, libos.SysRead)
		b.MovRI(isa.R1, 1)
		b.LeaData(isa.R2, "buf")
		b.MovRI(isa.R3, 9)
		ulib.Syscall(b, libos.SysWrite)
		ulib.Exit(b, 0)
	})
	install(t, l, "/bin/fio", prog)

	var out bytes.Buffer
	p, err := l.Spawn("/bin/fio", nil, linuxsim.SpawnOpt{Stdout: libos.NewWriterFile(&out)})
	if err != nil {
		t.Fatal(err)
	}
	if status := p.Wait(); status != 0 {
		t.Fatalf("status = %d", status)
	}
	if out.String() != "plaintext" {
		t.Fatalf("stdout = %q", out.String())
	}
	got, err := l.ReadFile("/tmp/f")
	if err != nil || string(got) != "plaintext" {
		t.Fatalf("file = %q, %v", got, err)
	}
}

func TestNativeRunsInstrumentedBinariesToo(t *testing.T) {
	// Sanity: the same *instrumented* binary also runs on Linux (the
	// guards pass because BND registers default to an all-range bound
	// only if set; on Linux they are zero — so instead verify the
	// *uninstrumented* path is the one used for Linux in benches, and
	// that instrumented code traps #BR here, proving the measurement
	// methodology must compare like for like).
	l := linuxsim.New(hostos.New())
	tc := core.NewToolchain()
	prog := buildProg(t, func(b *asm.Builder) {
		b.Zero("buf", 16)
		b.Entry("_start")
		ulib.Prologue(b)
		b.LeaData(isa.R1, "buf")
		b.MovRI(isa.R2, 1)
		b.Store(isa.Mem(isa.R1, 0), isa.R2)
		ulib.Exit(b, 0)
	})
	bin, err := tc.Compile("instr", prog)
	if err != nil {
		t.Fatal(err)
	}
	l.InstallBinary("/bin/instr", bin)
	p, err := l.Spawn("/bin/instr", nil, linuxsim.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	if status := p.Wait(); status != 128+libos.SIGSEGV {
		t.Fatalf("status = %d: instrumented code must #BR on a kernel that does not program MPX", status)
	}
}

func TestBinaryCacheMakesSpawnFlat(t *testing.T) {
	l := linuxsim.New(hostos.New())
	prog := buildProg(t, func(b *asm.Builder) {
		b.Entry("_start")
		ulib.Prologue(b)
		ulib.Exit(b, 0)
	})
	// Pad the data segment to make a "large" binary.
	big := buildProg(t, func(b *asm.Builder) {
		b.Bytes("pad", make([]byte, 2<<20))
		b.Entry("_start")
		ulib.Prologue(b)
		ulib.Exit(b, 0)
	})
	install(t, l, "/bin/small", prog)
	install(t, l, "/bin/big", big)
	for i := 0; i < 3; i++ {
		p, err := l.Spawn("/bin/big", nil, linuxsim.SpawnOpt{})
		if err != nil {
			t.Fatal(err)
		}
		if st := p.Wait(); st != 0 {
			t.Fatalf("status = %d", st)
		}
	}
}
