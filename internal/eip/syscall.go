package eip

import (
	"crypto/sha256"
	"encoding/binary"
	"io"
	"runtime"
	"time"

	"repro/internal/isa"
	"repro/internal/libos"
)

// syscall handles one trap of an EIP. Host-delegated operations model the
// OCALL path: arguments are copied out of the enclave into untrusted
// buffers and results copied back (the EENTER/EEXIT transition costs the
// paper's Lighttpd benchmark measures).
func (p *Proc) syscall() bool {
	sp := p.cpu.Regs[isa.SP]
	retAddr, f := p.cpu.Mem.Load(sp, 8)
	if f != nil {
		p.exit(128 + libos.SIGSEGV)
		return true
	}
	p.cpu.Regs[isa.SP] = sp + 8

	no := p.cpu.Regs[isa.R0]
	a1, a2, a3 := p.cpu.Regs[isa.R1], p.cpu.Regs[isa.R2], p.cpu.Regs[isa.R3]
	a4 := p.cpu.Regs[isa.R4]

	var ret int64
	switch no {
	case libos.SysExit:
		p.exit(int(int64(a1)) & 0xFF)
		return true
	case libos.SysWrite, libos.SysSend:
		ret = p.rw(int(int64(a1)), a2, a3, true)
	case libos.SysRead, libos.SysRecv:
		ret = p.rw(int(int64(a1)), a2, a3, false)
	case libos.SysWritev:
		ret = p.rwv(int(int64(a1)), a2, a3, true)
	case libos.SysReadv:
		ret = p.rwv(int(int64(a1)), a2, a3, false)
	case libos.SysOpen:
		ret = p.sysOpen(a1, a2)
	case libos.SysClose:
		p.fdmu.Lock()
		if d, ok := p.fds[int(int64(a1))]; ok {
			d.close()
			delete(p.fds, int(int64(a1)))
			ret = 0
		} else {
			ret = -libos.EBADF
		}
		p.fdmu.Unlock()
	case libos.SysSpawn:
		ret = p.sysSpawn(a1, a2, a3, a4)
	case libos.SysWait4:
		pid, status, errno := p.wait4(int(int64(a1)))
		if errno != 0 {
			ret = -int64(errno)
		} else {
			if a2 != 0 {
				var b [8]byte
				binary.LittleEndian.PutUint64(b[:], uint64(status))
				_ = p.cpu.Mem.WriteAt(a2, b[:])
			}
			ret = int64(pid)
		}
	case libos.SysPipe2:
		// The pipe key would be agreed between the enclaves via local
		// attestation; derive it from the creating enclave identity.
		meas := p.encl.Measurement()
		key := sha256.Sum256(append(meas[:], byte(p.pid)))
		ep := newEncPipe(key)
		rfd := p.installFD(&encPipeEnd{p: ep})
		wfd := p.installFD(&encPipeEnd{p: ep, writing: true})
		var b [16]byte
		binary.LittleEndian.PutUint64(b[0:], uint64(rfd))
		binary.LittleEndian.PutUint64(b[8:], uint64(wfd))
		if f := p.cpu.Mem.WriteAt(a1, b[:]); f != nil {
			ret = -libos.EFAULT
		}
	case libos.SysDup2:
		p.fdmu.Lock()
		if d, ok := p.fds[int(int64(a1))]; ok {
			if a1 != a2 {
				if old, exists := p.fds[int(int64(a2))]; exists {
					old.close()
				}
				p.fds[int(int64(a2))] = d.clone()
			}
			ret = int64(a2)
		} else {
			ret = -libos.EBADF
		}
		p.fdmu.Unlock()
	case libos.SysGetpid:
		ret = int64(p.pid)
	case libos.SysGetppid:
		ret = int64(p.ppid)
	case libos.SysMmap:
		length := (a1 + 4095) &^ 4095
		if p.heapPtr+length > p.heapEnd {
			ret = -libos.ENOMEM
		} else {
			addr := p.heapPtr
			p.heapPtr += length
			ret = int64(addr)
		}
	case libos.SysMunmap:
		ret = 0
	case libos.SysSocket:
		ret = int64(p.installFD(wrapOF(libos.NewSocketFile())))
	case libos.SysBind:
		ret = p.withOF(int(int64(a1)), func(of *libos.OpenFile) int64 {
			if err := of.BindHost(p.g.host, uint16(a2)); err != nil {
				return -libos.EACCES
			}
			return 0
		})
	case libos.SysListen:
		ret = 0
	case libos.SysAccept:
		ret = p.withOF(int(int64(a1)), func(of *libos.OpenFile) int64 {
			nf, err := of.AcceptHost()
			if err != nil {
				return -libos.EIO
			}
			return int64(p.installFD(wrapOF(nf)))
		})
	case libos.SysConnect:
		ret = p.withOF(int(int64(a1)), func(of *libos.OpenFile) int64 {
			if err := of.ConnectHost(p.g.host, uint16(a2)); err != nil {
				return -libos.ECONNREFUSED
			}
			return 0
		})
	case libos.SysFutex:
		ret = p.sysFutex(a1, a2, a3)
	case libos.SysClock:
		ret = time.Now().UnixNano()
	case libos.SysYield:
		runtime.Gosched()
	case libos.SysMkdir, libos.SysUnlink:
		ret = -libos.EACCES // read-only filesystem (Table 1)
	default:
		ret = -libos.ENOSYS
	}
	p.cpu.Regs[isa.R0] = uint64(ret)
	p.cpu.PC = retAddr
	return false
}

func (p *Proc) installFD(d fdesc) int {
	p.fdmu.Lock()
	defer p.fdmu.Unlock()
	fd := 3
	for {
		if _, used := p.fds[fd]; !used {
			break
		}
		fd++
	}
	p.fds[fd] = d
	return fd
}

func (p *Proc) withOF(fd int, f func(*libos.OpenFile) int64) int64 {
	p.fdmu.Lock()
	d, ok := p.fds[fd]
	p.fdmu.Unlock()
	if !ok {
		return -libos.EBADF
	}
	od, ok := d.(*ofFD)
	if !ok {
		return -libos.EBADF
	}
	return f(od.of)
}

func (p *Proc) rw(fd int, buf, n uint64, write bool) int64 {
	if n > 1<<20 {
		return -libos.EINVAL
	}
	if !p.inData(buf, n) {
		return -libos.EFAULT
	}
	p.fdmu.Lock()
	d, ok := p.fds[fd]
	p.fdmu.Unlock()
	if !ok {
		return -libos.EBADF
	}
	if write {
		data, err := p.cpu.Mem.ReadDirect(buf, int(n))
		if err != nil {
			return -libos.EFAULT
		}
		wn, werr := d.write(append([]byte(nil), data...))
		if werr != nil && wn == 0 {
			return -libos.EPIPE
		}
		return int64(wn)
	}
	tmp := make([]byte, n)
	rn, err := d.read(tmp)
	if err != nil && err != io.EOF && rn == 0 {
		return -libos.EIO
	}
	if rn > 0 {
		if f := p.cpu.Mem.WriteAt(buf, tmp[:rn]); f != nil {
			return -libos.EFAULT
		}
	}
	return int64(rn)
}

// rwv is the vectored rw: unmarshal the iovec array ({base, len} u64
// pairs) and run the spans through the same blocking descriptor ops in
// order, stopping at the first short transfer — byte-identical to a
// scalar loop over the spans.
func (p *Proc) rwv(fd int, iovPtr, cnt uint64, write bool) int64 {
	if cnt > libos.IovMax {
		return -libos.EINVAL
	}
	raw, err := p.cpu.Mem.ReadDirect(iovPtr, int(cnt*libos.IovEntrySize))
	if err != nil {
		return -libos.EFAULT
	}
	var total int64
	for i := 0; i < int(cnt); i++ {
		ent := raw[i*libos.IovEntrySize:]
		base := binary.LittleEndian.Uint64(ent)
		ln := binary.LittleEndian.Uint64(ent[8:])
		if ln == 0 {
			continue
		}
		r := p.rw(fd, base, ln, write)
		if r < 0 {
			if total > 0 {
				break
			}
			return r
		}
		total += r
		if r < int64(ln) {
			break
		}
	}
	return total
}

func (p *Proc) inData(addr, n uint64) bool {
	end := addr + n
	return addr >= p.dataBase && end >= addr && end <= p.dataBase+p.dataSize
}

func (p *Proc) sysOpen(pathPtr, pathLen uint64) int64 {
	path, err := p.cpu.Mem.ReadDirect(pathPtr, int(pathLen))
	if err != nil {
		return -libos.EFAULT
	}
	data, oerr := p.g.readProtected(string(path))
	if oerr != nil {
		return -libos.ENOENT
	}
	return int64(p.installFD(&roFile{data: data}))
}

func (p *Proc) sysSpawn(pathPtr, pathLen, argvPtr, argvLen uint64) int64 {
	path, err := p.cpu.Mem.ReadDirect(pathPtr, int(pathLen))
	if err != nil {
		return -libos.EFAULT
	}
	var argv []string
	if argvLen > 0 {
		block, err := p.cpu.Mem.ReadDirect(argvPtr, int(argvLen))
		if err != nil {
			return -libos.EFAULT
		}
		start := 0
		for i, b := range block {
			if b == 0 {
				argv = append(argv, string(block[start:i]))
				start = i + 1
			}
		}
	}
	child, serr := p.g.Spawn(string(path), argv, SpawnOpt{Parent: p})
	if serr != nil {
		return -libos.EAGAIN
	}
	return int64(child.pid)
}

func (p *Proc) wait4(pid int) (int, int, int) {
	g := p.g
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		found := false
		for cpid, c := range g.procs {
			if c.ppid != p.pid {
				continue
			}
			if pid >= 0 && cpid != pid {
				continue
			}
			found = true
			if c.exited {
				delete(g.procs, cpid)
				return cpid, c.status, 0
			}
		}
		if !found {
			return 0, 0, libos.ECHILD
		}
		g.procCond.Wait()
	}
}

func (p *Proc) sysFutex(op, addr, val uint64) int64 {
	switch op {
	case libos.FutexWait:
		cur, f := p.cpu.Mem.Load(addr, 8)
		if f != nil {
			return -libos.EFAULT
		}
		if cur != val {
			return -libos.EAGAIN
		}
		p.g.host.FutexWait(addr)
		return 0
	case libos.FutexWake:
		return int64(p.g.host.FutexWake(addr, int(val)))
	}
	return -libos.EINVAL
}
