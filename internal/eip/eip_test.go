package eip_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/eip"
	"repro/internal/hostos"
	"repro/internal/isa"
	"repro/internal/libos"
	"repro/internal/sgx"
	"repro/internal/ulib"
)

func buildProg(t testing.TB, f func(b *asm.Builder)) *asm.Program {
	t.Helper()
	b := asm.NewBuilder()
	f(b)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newEIP(t testing.TB) *eip.Graphene {
	t.Helper()
	return eip.New(sgx.NewPlatform(1<<30), hostos.New(), eip.DefaultConfig())
}

func install(t testing.TB, g *eip.Graphene, path string, prog *asm.Program) {
	t.Helper()
	bin, err := core.NewToolchain().CompileUnverified(path, prog)
	if err != nil {
		t.Fatal(err)
	}
	g.InstallBinary(path, bin)
}

func TestEIPHello(t *testing.T) {
	g := newEIP(t)
	prog := buildProg(t, func(b *asm.Builder) {
		b.String("msg", "from an EIP\n")
		b.Entry("_start")
		ulib.Prologue(b)
		ulib.WriteStr(b, 1, "msg", 12)
		ulib.Exit(b, 4)
	})
	install(t, g, "/bin/hello", prog)

	var out bytes.Buffer
	p, err := g.Spawn("/bin/hello", nil, eip.SpawnOpt{Stdout: libos.NewWriterFile(&out)})
	if err != nil {
		t.Fatal(err)
	}
	if status := p.Wait(); status != 4 {
		t.Fatalf("status = %d", status)
	}
	if out.String() != "from an EIP\n" {
		t.Fatalf("stdout = %q", out.String())
	}
}

func TestEIPSpawnIsExpensive(t *testing.T) {
	g := newEIP(t)
	prog := buildProg(t, func(b *asm.Builder) {
		b.Entry("_start")
		ulib.Prologue(b)
		ulib.Exit(b, 0)
	})
	install(t, g, "/bin/n", prog)

	start := time.Now()
	p, err := g.Spawn("/bin/n", nil, eip.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	p.Wait()
	elapsed := time.Since(start)
	// An 8 MiB enclave must be fully measured: this is milliseconds,
	// not microseconds.
	if elapsed < 500*time.Microsecond {
		t.Fatalf("EIP spawn took %v — enclave measurement cost missing", elapsed)
	}
	t.Logf("EIP spawn (8 MiB enclave): %v", elapsed)
}

func TestEIPEncryptedPipe(t *testing.T) {
	g := newEIP(t)
	prog := buildProg(t, func(b *asm.Builder) {
		b.Zero("fds", 16)
		b.String("msg", "sealed transit!!")
		b.Zero("buf", 32)
		b.Entry("_start")
		ulib.Prologue(b)
		ulib.Pipe2(b, "fds")
		b.LoadData(isa.R6, "fds") // rfd
		b.LeaData(isa.R1, "fds")
		b.Load(isa.R1, isa.Mem(isa.R1, 8)) // wfd
		b.LeaData(isa.R2, "msg")
		b.MovRI(isa.R3, 16)
		ulib.Syscall(b, libos.SysWrite)
		b.MovRR(isa.R1, isa.R6)
		b.LeaData(isa.R2, "buf")
		b.MovRI(isa.R3, 16)
		ulib.Syscall(b, libos.SysRead)
		b.MovRI(isa.R1, 1)
		b.LeaData(isa.R2, "buf")
		b.MovRI(isa.R3, 16)
		ulib.Syscall(b, libos.SysWrite)
		ulib.Exit(b, 0)
	})
	install(t, g, "/bin/pipe", prog)

	var out bytes.Buffer
	p, err := g.Spawn("/bin/pipe", nil, eip.SpawnOpt{Stdout: libos.NewWriterFile(&out)})
	if err != nil {
		t.Fatal(err)
	}
	if status := p.Wait(); status != 0 {
		t.Fatalf("status = %d", status)
	}
	if out.String() != "sealed transit!!" {
		t.Fatalf("stdout = %q", out.String())
	}
}

func TestEIPReadOnlyFS(t *testing.T) {
	g := newEIP(t)
	g.InstallFile("/etc/conf", []byte("frozen"))
	prog := buildProg(t, func(b *asm.Builder) {
		b.String("path", "/etc/conf")
		b.Zero("buf", 8)
		b.Entry("_start")
		ulib.Prologue(b)
		// Read works.
		ulib.OpenPath(b, "path", 9, libos.ORdOnly)
		b.MovRR(isa.R6, isa.R0)
		b.MovRR(isa.R1, isa.R6)
		b.LeaData(isa.R2, "buf")
		b.MovRI(isa.R3, 6)
		ulib.Syscall(b, libos.SysRead)
		// Write must fail.
		b.MovRR(isa.R1, isa.R6)
		b.LeaData(isa.R2, "buf")
		b.MovRI(isa.R3, 6)
		ulib.Syscall(b, libos.SysWrite)
		// Exit with 1 if the write unexpectedly succeeded.
		b.CmpI(isa.R0, 0)
		b.Jg("bad")
		ulib.Exit(b, 0)
		b.Label("bad")
		b.Nop()
		ulib.Exit(b, 1)
	})
	install(t, g, "/bin/ro", prog)
	p, err := g.Spawn("/bin/ro", nil, eip.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	if status := p.Wait(); status != 0 {
		t.Fatalf("status = %d: read-only FS accepted a write", status)
	}
}

func TestEIPProtectedFileTamper(t *testing.T) {
	g := newEIP(t)
	g.InstallFile("/secret", []byte("payload"))
	// Protected files are sealed; direct Graphene-internal read works.
	prog := buildProg(t, func(b *asm.Builder) {
		b.String("path", "/secret")
		b.Zero("buf", 8)
		b.Entry("_start")
		ulib.Prologue(b)
		ulib.OpenPath(b, "path", 7, libos.ORdOnly)
		b.MovRR(isa.R6, isa.R0)
		b.MovRR(isa.R1, isa.R6)
		b.LeaData(isa.R2, "buf")
		b.MovRI(isa.R3, 7)
		ulib.Syscall(b, libos.SysRead)
		b.MovRI(isa.R1, 1)
		b.LeaData(isa.R2, "buf")
		b.MovRI(isa.R3, 7)
		ulib.Syscall(b, libos.SysWrite)
		ulib.Exit(b, 0)
	})
	install(t, g, "/bin/cat", prog)
	var out bytes.Buffer
	p, err := g.Spawn("/bin/cat", nil, eip.SpawnOpt{Stdout: libos.NewWriterFile(&out)})
	if err != nil {
		t.Fatal(err)
	}
	if status := p.Wait(); status != 0 || out.String() != "payload" {
		t.Fatalf("status=%d out=%q", status, out.String())
	}
}

func TestEIPSpawnChild(t *testing.T) {
	g := newEIP(t)
	child := buildProg(t, func(b *asm.Builder) {
		b.String("m", "eip child\n")
		b.Entry("_start")
		ulib.Prologue(b)
		ulib.WriteStr(b, 1, "m", 10)
		ulib.Exit(b, 0)
	})
	install(t, g, "/bin/child", child)
	parent := buildProg(t, func(b *asm.Builder) {
		b.String("path", "/bin/child")
		b.Entry("_start")
		ulib.Prologue(b)
		ulib.SpawnPath(b, "path", 10, "", 0)
		b.MovRR(isa.R6, isa.R0)
		ulib.Wait4(b, isa.R6)
		ulib.Exit(b, 0)
	})
	install(t, g, "/bin/parent", parent)

	var out bytes.Buffer
	p, err := g.Spawn("/bin/parent", nil, eip.SpawnOpt{Stdout: libos.NewWriterFile(&out)})
	if err != nil {
		t.Fatal(err)
	}
	if status := p.Wait(); status != 0 {
		t.Fatalf("status = %d", status)
	}
	if out.String() != "eip child\n" {
		t.Fatalf("stdout = %q", out.String())
	}
}

func TestEIPEnclaveDestroyedOnExit(t *testing.T) {
	platform := sgx.NewPlatform(1 << 30)
	g := eip.New(platform, hostos.New(), eip.DefaultConfig())
	prog := buildProg(t, func(b *asm.Builder) {
		b.Entry("_start")
		ulib.Prologue(b)
		ulib.Exit(b, 0)
	})
	install(t, g, "/bin/x", prog)
	before := platform.EPCUsed()
	p, err := g.Spawn("/bin/x", nil, eip.SpawnOpt{})
	if err != nil {
		t.Fatal(err)
	}
	p.Wait()
	if platform.EPCUsed() != before {
		t.Fatalf("EPC leak: %d → %d", before, platform.EPCUsed())
	}
}
