// Package eip implements the Enclave-Isolated-Process baseline: a
// Graphene-SGX-like LibOS where every process lives in its own enclave
// (§3.2, Table 1). It exists to reproduce the paper's comparison points:
//
//   - Process creation requires creating and measuring a whole new
//     enclave, local attestation between parent and child, and migrating
//     the process state over an encrypted channel — all real
//     cryptographic work here, which is why EIP spawn is orders of
//     magnitude slower than SIP spawn (Fig 6a).
//   - IPC crosses enclave boundaries, so every pipe write is sealed with
//     AES-GCM into untrusted memory and unsealed on read (Fig 6b).
//   - The filesystem is read-only protected files: with n LibOS instances
//     there is no safe shared writable state (Table 1).
//
// Binaries run uninstrumented (Graphene is binary-compatible and applies
// no SFI), so EIP processes pay no MMDSFI overhead — but gain no
// intra-enclave isolation either, which the RIPE benchmark (§9.3)
// exposes.
package eip

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"

	"repro/internal/hostos"
	"repro/internal/libos"
	"repro/internal/mem"
	"repro/internal/oelf"
	"repro/internal/sgx"
	"repro/internal/vm"
)

// Config sizes the per-process enclaves.
type Config struct {
	// EnclaveSize is the per-process enclave size. The paper notes
	// Graphene-SGX was configured with the minimal size able to run
	// each benchmark; creation cost is proportional to this.
	EnclaveSize uint64
	// LibOSReserve is the in-enclave LibOS footprint added to every
	// process enclave (Graphene's LibOS is loaded into each).
	LibOSReserve uint64
	// StackSize and HeapSize size the process image.
	StackSize, HeapSize uint64
	// CycleSlice is the scheduler quantum.
	CycleSlice uint64
}

// DefaultConfig uses small enclaves suitable for tests; benchmarks pass
// realistic sizes.
func DefaultConfig() Config {
	return Config{
		EnclaveSize:  8 << 20,
		LibOSReserve: 2 << 20,
		StackSize:    256 << 10,
		HeapSize:     1 << 20,
		CycleSlice:   1 << 20,
	}
}

// Graphene is the EIP-based system: a process table where every process
// owns an enclave.
type Graphene struct {
	platform *sgx.Platform
	host     *hostos.Host
	cfg      Config

	mu       sync.Mutex
	procCond *sync.Cond
	files    map[string][]byte // sealed, read-only protected files
	fsKey    [32]byte
	procs    map[int]*Proc
	nextPID  int
	shmSeq   int
}

// New creates an EIP system on the given platform and host.
func New(platform *sgx.Platform, host *hostos.Host, cfg Config) *Graphene {
	g := &Graphene{
		platform: platform,
		host:     host,
		cfg:      cfg,
		files:    make(map[string][]byte),
		procs:    make(map[int]*Proc),
		nextPID:  1,
	}
	g.fsKey = sha256.Sum256([]byte("graphene-pf-key"))
	g.procCond = sync.NewCond(&g.mu)
	return g
}

// Host returns the untrusted substrate.
func (g *Graphene) Host() *hostos.Host { return g.host }

// InstallBinary seals a binary into the read-only protected FS.
func (g *Graphene) InstallBinary(path string, bin *oelf.Binary) {
	g.InstallFile(path, bin.Marshal())
}

// InstallFile seals a file into the read-only protected FS. This happens
// at image-preparation time; at runtime the FS cannot be written (the
// paper's Graphene-SGX limitation).
func (g *Graphene) InstallFile(path string, data []byte) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.files[path] = seal(g.fsKey, []byte("pf:"+path), data)
}

func (g *Graphene) readProtected(path string) ([]byte, error) {
	g.mu.Lock()
	sealed, ok := g.files[path]
	g.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("eip: %s: no such protected file", path)
	}
	return open(g.fsKey, []byte("pf:"+path), sealed)
}

// Proc is one EIP: a process in its own enclave.
type Proc struct {
	g    *Graphene
	pid  int
	ppid int
	encl *sgx.Enclave
	cpu  *vm.CPU

	fdmu   sync.Mutex
	fds    map[int]fdesc
	nextFD int

	heapPtr, heapEnd   uint64
	dataBase, dataSize uint64

	exited bool
	status int
	done   chan struct{}
	cycles uint64
}

// PID returns the process id.
func (p *Proc) PID() int { return p.pid }

// Cycles returns retired instructions.
func (p *Proc) Cycles() uint64 { return p.cycles }

// Wait blocks for exit.
func (p *Proc) Wait() int {
	<-p.done
	return p.status
}

// SpawnOpt mirrors the other kernels' spawn options.
type SpawnOpt struct {
	Parent                *Proc
	Stdin, Stdout, Stderr *libos.OpenFile
}

const enclaveBase = 0x40000000

// Spawn creates a new EIP: the three expensive steps of §3.2.
func (g *Graphene) Spawn(path string, argv []string, opt SpawnOpt) (*Proc, error) {
	raw, err := g.readProtected(path)
	if err != nil {
		return nil, err
	}
	bin, err := oelf.Unmarshal(raw)
	if err != nil {
		return nil, err
	}
	img := &bin.Image

	// Step 1: create and measure a whole new enclave. Every page is
	// EADD+EEXTENDed — the dominant cost.
	encl, err := g.platform.ECreate(enclaveBase, g.cfg.EnclaveSize, 4)
	if err != nil {
		return nil, err
	}
	for off := uint64(0); off < g.cfg.EnclaveSize; off += mem.PageSize {
		perm := mem.PermRW
		if off < g.cfg.LibOSReserve+mem.PageSize+img.CodeSpan() {
			perm = mem.PermRWX // LibOS + code pool (the RWX pitfall of §7)
		}
		if err := encl.EAdd(enclaveBase+off, nil, perm); err != nil {
			encl.Destroy()
			return nil, err
		}
	}
	if _, err := encl.EInit(); err != nil {
		encl.Destroy()
		return nil, err
	}

	// Step 2: local attestation with the parent enclave (or the
	// bootstrapper): exchange MACed reports both ways and derive a
	// session key.
	var nonce [64]byte
	copy(nonce[:], "eip-spawn-handshake")
	childReport, err := encl.EReport(nonce)
	if err != nil {
		encl.Destroy()
		return nil, err
	}
	if err := g.platform.VerifyReport(childReport); err != nil {
		encl.Destroy()
		return nil, err
	}
	var parentMeas sgx.Measurement
	if opt.Parent != nil {
		parentReport, err := opt.Parent.encl.EReport(nonce)
		if err != nil {
			encl.Destroy()
			return nil, err
		}
		if err := g.platform.VerifyReport(parentReport); err != nil {
			encl.Destroy()
			return nil, err
		}
		parentMeas = opt.Parent.encl.Measurement()
	}
	sessionKey := sha256.Sum256(append(append(parentMeas[:], childReport.Measurement[:]...), nonce[:]...))

	// Step 3: migrate the process state over an encrypted stream
	// through untrusted memory.
	state := encodeSpawnState(path, argv)
	g.mu.Lock()
	g.shmSeq++
	shmKey := fmt.Sprintf("eip-spawn-%d", g.shmSeq)
	g.mu.Unlock()
	g.host.ShmWrite(shmKey, seal(sessionKey, []byte(shmKey), state))
	sealedState, okShm := g.host.ShmRead(shmKey)
	if !okShm {
		encl.Destroy()
		return nil, errors.New("eip: state transfer lost")
	}
	if _, err := open(sessionKey, []byte(shmKey), sealedState); err != nil {
		encl.Destroy()
		return nil, fmt.Errorf("eip: state transfer corrupted: %w", err)
	}

	// Load the binary into the child enclave.
	codeBase := uint64(enclaveBase) + g.cfg.LibOSReserve + mem.PageSize
	dataBase := codeBase + img.CodeSpan() + uint64(img.GuardSize)
	dataSize := (img.MinDataSize() + g.cfg.HeapSize + g.cfg.StackSize + mem.PageSize - 1) /
		mem.PageSize * mem.PageSize
	if dataBase+dataSize+mem.PageSize > enclaveBase+g.cfg.EnclaveSize {
		encl.Destroy()
		return nil, fmt.Errorf("eip: binary does not fit enclave size %d", g.cfg.EnclaveSize)
	}
	if err := encl.WriteDirect(codeBase-mem.PageSize, libos.EncodeTrampoline(0)); err != nil {
		encl.Destroy()
		return nil, err
	}
	if err := encl.WriteDirect(codeBase, img.Code); err != nil {
		encl.Destroy()
		return nil, err
	}
	if err := encl.WriteDirect(dataBase, img.Data); err != nil {
		encl.Destroy()
		return nil, err
	}

	g.mu.Lock()
	pid := g.nextPID
	g.nextPID++
	p := &Proc{
		g: g, pid: pid, encl: encl, cpu: vm.New(encl.Paged),
		fds: make(map[int]fdesc), nextFD: 3,
		dataBase: dataBase, dataSize: dataSize,
		done: make(chan struct{}),
	}
	if opt.Parent != nil {
		p.ppid = opt.Parent.pid
	}
	g.procs[pid] = p
	g.mu.Unlock()

	// fd inheritance: descriptors are re-established in the child; pipe
	// ends keep flowing through their (encrypted) untrusted queues.
	if opt.Parent != nil {
		opt.Parent.fdmu.Lock()
		for fd, d := range opt.Parent.fds {
			p.fds[fd] = d.clone()
			if fd >= p.nextFD {
				p.nextFD = fd + 1
			}
		}
		opt.Parent.fdmu.Unlock()
	} else {
		p.fds[0] = wrapOF(opt.Stdin)
		p.fds[1] = wrapOF(opt.Stdout)
		p.fds[2] = wrapOF(opt.Stderr)
	}

	_, _, err = libos.SetupUserStack(encl.Paged, p.cpu, codeBase-mem.PageSize,
		dataBase, dataSize, g.cfg.StackSize, img.MinDataSize(), append([]string{path}, argv...))
	if err != nil {
		encl.Destroy()
		return nil, err
	}
	p.heapPtr = dataBase + (img.MinDataSize()+15)/16*16
	p.heapEnd = dataBase + dataSize - g.cfg.StackSize
	p.cpu.PC = codeBase + uint64(img.Entry)

	go p.run()
	return p, nil
}

func encodeSpawnState(path string, argv []string) []byte {
	out := []byte(path)
	for _, a := range argv {
		out = append(out, 0)
		out = append(out, a...)
	}
	return out
}

func (p *Proc) run() {
	for {
		stop := p.cpu.Run(p.g.cfg.CycleSlice)
		p.cycles = p.cpu.Cycles
		switch stop.Reason {
		case vm.StopCycles:
			continue
		case vm.StopTrap:
			if p.syscall() {
				return
			}
		default:
			p.exit(128 + libos.SIGSEGV)
			return
		}
	}
}

func (p *Proc) exit(status int) {
	p.fdmu.Lock()
	for fd, d := range p.fds {
		d.close()
		delete(p.fds, fd)
	}
	p.fdmu.Unlock()
	p.encl.Destroy()
	g := p.g
	g.mu.Lock()
	p.exited = true
	p.status = status
	close(p.done)
	g.procCond.Broadcast()
	g.mu.Unlock()
}

// Procs returns live pids.
func (g *Graphene) Procs() []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []int
	for pid, p := range g.procs {
		if !p.exited {
			out = append(out, pid)
		}
	}
	return out
}
