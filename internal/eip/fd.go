package eip

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"io"
	"sync"

	"repro/internal/libos"
)

// seal encrypts-and-authenticates data with AES-GCM under a key derived
// from key32, binding the associated data. This is the cryptography every
// EIP boundary crossing pays.
func seal(key32 [32]byte, ad, data []byte) []byte {
	block, err := aes.NewCipher(key32[:16])
	if err != nil {
		panic(err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		panic(err)
	}
	nonce := make([]byte, gcm.NonceSize())
	sum := sha256.Sum256(append(append([]byte{}, ad...), data...))
	copy(nonce, sum[:])
	out := make([]byte, 0, gcm.NonceSize()+len(data)+gcm.Overhead())
	out = append(out, nonce...)
	return gcm.Seal(out, nonce, data, ad)
}

// open verifies and decrypts a sealed buffer.
func open(key32 [32]byte, ad, sealed []byte) ([]byte, error) {
	block, err := aes.NewCipher(key32[:16])
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	if len(sealed) < gcm.NonceSize() {
		return nil, errors.New("eip: sealed buffer too short")
	}
	return gcm.Open(nil, sealed[:gcm.NonceSize()], sealed[gcm.NonceSize():], ad)
}

// fdesc is an EIP file descriptor.
type fdesc interface {
	read(p []byte) (int, error)
	write(p []byte) (int, error)
	close()
	clone() fdesc
}

// ofFD adapts a libos.OpenFile (writer stdio, discard, host sockets).
type ofFD struct{ of *libos.OpenFile }

func wrapOF(of *libos.OpenFile) fdesc {
	if of == nil {
		of = libos.NewDiscardFile()
	} else {
		of.Ref()
	}
	return &ofFD{of: of}
}

func (d *ofFD) read(p []byte) (int, error)  { return d.of.Read(p) }
func (d *ofFD) write(p []byte) (int, error) { return d.of.Write(p) }
func (d *ofFD) close()                      { d.of.Unref() }
func (d *ofFD) clone() fdesc                { d.of.Ref(); return &ofFD{of: d.of} }

// roFile is an open read-only protected file, fully unsealed at open (the
// per-open decryption cost of protected files).
type roFile struct {
	data []byte
	off  int
}

func (d *roFile) read(p []byte) (int, error) {
	if d.off >= len(d.data) {
		return 0, io.EOF
	}
	n := copy(p, d.data[d.off:])
	d.off += n
	return n, nil
}
func (d *roFile) write([]byte) (int, error) { return 0, errors.New("eip: read-only filesystem") }
func (d *roFile) close()                    {}
func (d *roFile) clone() fdesc              { return &roFile{data: d.data} }

// encPipe is the EIP pipe: a queue of AES-GCM sealed messages standing in
// untrusted memory between two enclaves. Every write seals; every read
// unseals — the paper's expensive cross-enclave IPC.
type encPipe struct {
	mu      sync.Mutex
	cond    *sync.Cond
	key     [32]byte
	seq     uint64
	rseq    uint64
	queue   [][]byte // sealed chunks in "untrusted memory"
	residue []byte   // unsealed bytes not yet consumed
	rClosed bool
	wClosed bool
	readers int
	writers int
}

func newEncPipe(key [32]byte) *encPipe {
	ep := &encPipe{key: key, readers: 1, writers: 1}
	ep.cond = sync.NewCond(&ep.mu)
	return ep
}

type encPipeEnd struct {
	p       *encPipe
	writing bool
}

func (e *encPipeEnd) read(p []byte) (int, error) {
	if e.writing {
		return 0, errors.New("eip: write end")
	}
	ep := e.p
	ep.mu.Lock()
	defer ep.mu.Unlock()
	for len(ep.residue) == 0 && len(ep.queue) == 0 && !ep.wClosed {
		ep.cond.Wait()
	}
	if len(ep.residue) == 0 && len(ep.queue) > 0 {
		sealed := ep.queue[0]
		ep.queue = ep.queue[1:]
		var ad [8]byte
		binary.LittleEndian.PutUint64(ad[:], ep.rseq)
		ep.rseq++
		pt, err := open(ep.key, ad[:], sealed)
		if err != nil {
			return 0, errors.New("eip: pipe message corrupted in untrusted memory")
		}
		ep.residue = pt
	}
	if len(ep.residue) == 0 {
		return 0, io.EOF
	}
	n := copy(p, ep.residue)
	ep.residue = ep.residue[n:]
	ep.cond.Broadcast()
	return n, nil
}

const encPipeMaxQueue = 64

func (e *encPipeEnd) write(p []byte) (int, error) {
	if !e.writing {
		return 0, errors.New("eip: read end")
	}
	ep := e.p
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.rClosed {
		return 0, errors.New("eip: broken pipe")
	}
	for len(ep.queue) >= encPipeMaxQueue && !ep.rClosed {
		ep.cond.Wait()
	}
	var ad [8]byte
	binary.LittleEndian.PutUint64(ad[:], ep.seq)
	ep.seq++
	ep.queue = append(ep.queue, seal(ep.key, ad[:], p))
	ep.cond.Broadcast()
	return len(p), nil
}

func (e *encPipeEnd) close() {
	ep := e.p
	ep.mu.Lock()
	if e.writing {
		ep.writers--
		if ep.writers <= 0 {
			ep.wClosed = true
		}
	} else {
		ep.readers--
		if ep.readers <= 0 {
			ep.rClosed = true
		}
	}
	ep.cond.Broadcast()
	ep.mu.Unlock()
}

func (e *encPipeEnd) clone() fdesc {
	ep := e.p
	ep.mu.Lock()
	if e.writing {
		ep.writers++
	} else {
		ep.readers++
	}
	ep.mu.Unlock()
	return &encPipeEnd{p: ep, writing: e.writing}
}
