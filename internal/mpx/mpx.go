// Package mpx models the Intel Memory Protection Extensions state that
// MMDSFI relies on: four bound registers, each holding a 64-bit lower and
// upper bound, checked by the bndcl/bndcu instructions.
//
// The paper (§2.3) leans on two MPX properties, both preserved here:
//
//  1. A bound register can represent any address or size, so a domain can
//     live anywhere in the enclave and have any size.
//  2. Bound registers are saved and restored automatically on asynchronous
//     enclave exits (AEX), so the maximum number of domains is not limited
//     by the number of bound registers.
//
// Occlum does not use MPX bound tables; neither does this model.
package mpx

import (
	"fmt"

	"repro/internal/isa"
)

// Bound is one MPX bound register: an inclusive [Lower, Upper] range.
//
// The Occlum LibOS programs BND0 with a SIP's data region
// [D.begin, D.end-1] and BND1 with the degenerate range [v, v] where v is
// the 64-bit cfi_label value of the SIP's domain, turning bndcl+bndcu into
// an equality test.
type Bound struct {
	Lower uint64
	Upper uint64
}

// Contains reports whether v passes both the lower and upper check.
func (b Bound) Contains(v uint64) bool { return v >= b.Lower && v <= b.Upper }

// String renders the bound as [lower, upper].
func (b Bound) String() string { return fmt.Sprintf("[%#x, %#x]", b.Lower, b.Upper) }

// File is the MPX bound register file of one hart.
type File struct {
	regs [isa.NumBndRegs]Bound
}

// Get returns the value of bound register b.
func (f *File) Get(b isa.BndReg) Bound { return f.regs[b] }

// Set writes bound register b. Only the LibOS (via enclave/hart setup) and
// the dangerous bndmk/bndmov instructions call this; verified user code
// cannot reach it.
func (f *File) Set(b isa.BndReg, v Bound) { f.regs[b] = v }

// CheckLower implements bndcl: it reports whether v passes the lower-bound
// check of register b. A false result corresponds to a #BR exception.
func (f *File) CheckLower(b isa.BndReg, v uint64) bool { return v >= f.regs[b].Lower }

// CheckUpper implements bndcu: it reports whether v passes the upper-bound
// check of register b. A false result corresponds to a #BR exception.
func (f *File) CheckUpper(b isa.BndReg, v uint64) bool { return v <= f.regs[b].Upper }

// Snapshot returns a copy of all bound registers, as saved into the SSA on
// an asynchronous enclave exit.
func (f *File) Snapshot() [isa.NumBndRegs]Bound { return f.regs }

// Restore reloads all bound registers from an SSA snapshot, as done when an
// SGX thread resumes from an AEX.
func (f *File) Restore(s [isa.NumBndRegs]Bound) { f.regs = s }
