package mpx

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestChecks(t *testing.T) {
	var f File
	f.Set(isa.BND0, Bound{Lower: 0x1000, Upper: 0x1FFF})

	cases := []struct {
		v      uint64
		lo, hi bool
	}{
		{0x0FFF, false, true},
		{0x1000, true, true},
		{0x1800, true, true},
		{0x1FFF, true, true},
		{0x2000, true, false},
	}
	for _, c := range cases {
		if got := f.CheckLower(isa.BND0, c.v); got != c.lo {
			t.Errorf("CheckLower(%#x) = %v, want %v", c.v, got, c.lo)
		}
		if got := f.CheckUpper(isa.BND0, c.v); got != c.hi {
			t.Errorf("CheckUpper(%#x) = %v, want %v", c.v, got, c.hi)
		}
	}
}

func TestEqualityBound(t *testing.T) {
	// BND1 programmed as [v, v] makes bndcl+bndcu an equality test —
	// the cfi_guard trick.
	v := isa.CFILabelValue(42)
	var f File
	f.Set(isa.BND1, Bound{Lower: v, Upper: v})
	if !(f.CheckLower(isa.BND1, v) && f.CheckUpper(isa.BND1, v)) {
		t.Fatal("exact label value should pass")
	}
	for _, bad := range []uint64{v - 1, v + 1, 0, isa.CFILabelValue(43)} {
		if f.CheckLower(isa.BND1, bad) && f.CheckUpper(isa.BND1, bad) {
			t.Errorf("value %#x should fail the equality bound", bad)
		}
	}
}

func TestSnapshotRestore(t *testing.T) {
	var f File
	f.Set(isa.BND0, Bound{1, 2})
	f.Set(isa.BND3, Bound{7, 9})
	snap := f.Snapshot()

	// A (hypothetically) malicious host cannot influence the restored
	// values: Restore reinstates exactly the snapshot.
	f.Set(isa.BND0, Bound{0, ^uint64(0)})
	f.Restore(snap)
	if f.Get(isa.BND0) != (Bound{1, 2}) || f.Get(isa.BND3) != (Bound{7, 9}) {
		t.Fatalf("restore mismatch: %v %v", f.Get(isa.BND0), f.Get(isa.BND3))
	}
}

func TestContainsQuick(t *testing.T) {
	// Property: Contains ⇔ CheckLower ∧ CheckUpper.
	f := func(lo, hi, v uint64) bool {
		b := Bound{Lower: lo, Upper: hi}
		var file File
		file.Set(isa.BND2, b)
		return b.Contains(v) == (file.CheckLower(isa.BND2, v) && file.CheckUpper(isa.BND2, v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
