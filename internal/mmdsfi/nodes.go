package mmdsfi

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
)

// buildNodes lowers a list of items into the analysis representation,
// resolving label targets to node indices and data symbols to the
// PC-relative operands the linker will emit. It returns the Code and the
// explicit entry indices (the program entry plus every function label,
// which covers uninstrumented programs that have no cfi_labels yet).
func buildNodes(items []asm.Item, p *asm.Program) (*Code, []int, error) {
	addrs := make([]uint64, len(items)+1)
	var off uint64
	labelIdx := make(map[string]int)
	for i, it := range items {
		addrs[i] = off
		off += uint64(isa.EncodedLen(it.Inst.Op))
		for _, l := range it.Labels {
			if _, dup := labelIdx[l]; dup {
				return nil, nil, fmt.Errorf("mmdsfi: duplicate label %q", l)
			}
			labelIdx[l] = i
		}
	}
	addrs[len(items)] = off
	codeSpan := int64((off + mem.PageSize - 1) / mem.PageSize * mem.PageSize)
	dataStart := codeSpan + GuardSize

	exempt := markExempt(items)
	nodes := make([]Node, len(items))
	for i, it := range items {
		in := it.Inst
		target := -1
		if in.Op.IsDirectBranch() {
			ti, ok := labelIdx[in.Label]
			if !ok {
				return nil, nil, fmt.Errorf("mmdsfi: undefined label %q", in.Label)
			}
			target = ti
		}
		if it.DataSym != "" {
			symOff, ok := p.DataSyms[it.DataSym]
			if !ok {
				return nil, nil, fmt.Errorf("mmdsfi: undefined data symbol %q", it.DataSym)
			}
			next := addrs[i] + uint64(isa.EncodedLen(in.Op))
			disp := int64(dataStart) + int64(symOff) + int64(in.Mem.Disp) - int64(next)
			in.Mem = isa.MemRef{Base: isa.RegPC, Index: in.Mem.Index, Scale: in.Mem.Scale, Disp: int32(disp)}
		}
		nodes[i] = Node{
			Inst:   in,
			Target: target,
			Addr:   addrs[i],
			Next:   addrs[i] + uint64(isa.EncodedLen(in.Op)),
			Exempt: exempt[i],
		}
	}

	var entries []int
	if p.Entry != "" {
		if ei, ok := labelIdx[p.Entry]; ok {
			entries = append(entries, ei)
		}
	}
	for l := range p.FuncLabels {
		if i, ok := labelIdx[l]; ok {
			entries = append(entries, i)
		}
	}
	code := &Code{
		Nodes:     nodes,
		GuardSize: GuardSize,
		CodeSpan:  codeSpan,
		MinData:   int64(len(p.Data)) + int64(p.BSS),
	}
	return code, entries, nil
}

// hoistLoopGuards implements loop check hoisting (§4.3, optimization 2):
// for a mem_guard inside a loop whose operand advances by a small constant
// per iteration, place a copy of the guard in the loop preheader. The
// in-loop guard is then removed by removeRedundantGuards if (and only if)
// the range analysis proves the hoisted check plus the successful-access
// refinement cover every iteration.
func hoistLoopGuards(items []asm.Item, guards []guardRef, p *asm.Program, opts Options) ([]asm.Item, []guardRef, error) {
	code, _, err := buildNodes(items, p)
	if err != nil {
		return nil, nil, err
	}

	// Find natural loops from direct back edges: branch at b targeting
	// head h ≤ b defines body [h, b].
	type loop struct{ head, tail int }
	var loops []loop
	for i, nd := range code.Nodes {
		if nd.Inst.Op.IsDirectBranch() && nd.Inst.Op != isa.OpCall && nd.Target >= 0 && nd.Target <= i {
			loops = append(loops, loop{head: nd.Target, tail: i})
		}
	}
	if len(loops) == 0 {
		return items, guards, nil
	}

	// For each guard inside a loop, decide hoistability: the operand's
	// base register must only change by constant steps inside the body,
	// with total per-iteration step below the guard slack, and the
	// index register (if any) must not change at all.
	type hoist struct {
		before int        // insert position (loop head item index)
		m      isa.MemRef // operand to check, with entry displacement
		sym    string
	}
	var hoists []hoist
	for _, g := range guards {
		if g.access < 0 {
			continue
		}
		m := code.Nodes[g.cl].Inst.Mem
		if m.IsPCRel() || m.IsAbs() {
			continue
		}
		for _, lp := range loops {
			if g.cl < lp.head || g.cl > lp.tail {
				continue
			}
			step, ok := loopStep(code.Nodes[lp.head:lp.tail+1], m)
			if !ok || abs64(step) > GuardSize-64 {
				continue
			}
			h := hoist{before: lp.head, m: m, sym: items[g.cl].DataSym}
			dup := false
			for _, prev := range hoists {
				if prev == h {
					dup = true
					break
				}
			}
			if !dup {
				hoists = append(hoists, h)
			}
			break
		}
	}
	if len(hoists) == 0 {
		return items, guards, nil
	}

	// Rebuild the item list with preheader guards inserted. Inserting
	// *before* the loop head keeps the back edge (which targets the
	// head's labels) inside the loop, so the hoisted guard runs once.
	insertAt := make(map[int][]hoist)
	for _, h := range hoists {
		insertAt[h.before] = append(insertAt[h.before], h)
	}
	var out []asm.Item
	var hoisted []guardRef
	remap := make([]int, len(items))
	for i, it := range items {
		for _, h := range insertAt[i] {
			// The preheader guard must run before the head label is
			// reachable by fallthrough; it takes no labels so jumps
			// into the loop bypass it (and the in-loop guard then
			// simply stays, keeping soundness).
			hoisted = append(hoisted, guardRef{cl: len(out), access: -1})
			out = append(out, guardPair(h.m, h.sym)...)
		}
		remap[i] = len(out)
		out = append(out, it)
	}
	ng := make([]guardRef, 0, len(guards)+len(hoisted))
	for _, g := range guards {
		ng = append(ng, guardRef{cl: remap[g.cl], access: remap[g.access]})
	}
	ng = append(ng, hoisted...)
	return out, ng, nil
}

// loopStep computes the net constant change applied to the base register
// of operand m across one iteration of the loop body, returning ok=false
// when the register changes in a non-constant way, the operand's index
// register changes, or the body leaves the loop through a call or trap
// (after which nothing can be assumed). loopStep is a heuristic only:
// hoisting an extra guard is always sound, and the *removal* of the
// in-loop guard is justified independently by the range analysis.
func loopStep(body []Node, m isa.MemRef) (int64, bool) {
	var step int64
	for _, nd := range body {
		in := nd.Inst
		switch in.Op {
		case isa.OpCall, isa.OpCallR, isa.OpCallM, isa.OpJmpR, isa.OpJmpM, isa.OpTrap:
			return 0, false
		}
		for _, w := range regWrites(in) {
			if m.HasIndex() && w.reg == m.Index {
				return 0, false
			}
			if w.reg != m.Base {
				continue
			}
			if !w.constStep {
				return 0, false
			}
			step += w.delta
		}
	}
	return step, true
}

type regEffect struct {
	reg       isa.Reg
	delta     int64
	constStep bool
}

// regWrites lists the register writes of in, marking constant increments.
func regWrites(in isa.Inst) []regEffect {
	switch in.Op {
	case isa.OpAddRI:
		return []regEffect{{in.R1, in.Imm, true}}
	case isa.OpSubRI:
		return []regEffect{{in.R1, -in.Imm, true}}
	case isa.OpMovRI, isa.OpMovRR, isa.OpLoad, isa.OpLoadB, isa.OpLea,
		isa.OpAddRR, isa.OpSubRR, isa.OpMulRR, isa.OpDivRR, isa.OpModRR,
		isa.OpAndRR, isa.OpOrRR, isa.OpXorRR, isa.OpShlRR, isa.OpShrRR,
		isa.OpMulRI, isa.OpAndRI, isa.OpOrRI, isa.OpXorRI, isa.OpShlRI,
		isa.OpShrRI, isa.OpNeg, isa.OpNot:
		return []regEffect{{in.R1, 0, false}}
	case isa.OpPop:
		return []regEffect{{in.R1, 0, false}, {isa.SP, 8, true}}
	case isa.OpPush, isa.OpPushI:
		return []regEffect{{isa.SP, -8, true}}
	case isa.OpLoop:
		return []regEffect{{isa.R1, -1, true}}
	}
	return nil
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// removeRedundantGuards implements redundant check elimination (§4.3,
// optimization 1): a mem_guard is dropped when the analysis proves the
// guarded access in-window from the state *before* the guard. The batch
// removal is sound because each removed guard's information is
// re-established by the successful-access refinement of the access it
// guarded.
func removeRedundantGuards(items []asm.Item, guards []guardRef, p *asm.Program) ([]asm.Item, error) {
	code, entries, err := buildNodes(items, p)
	if err != nil {
		return nil, err
	}
	res := Analyze(code, entries)

	drop := make([]bool, len(items))
	for _, g := range guards {
		if g.access < 0 {
			// A hoisted preheader guard is dead weight when the range
			// analysis already proves its own check in-window.
			if res.In[g.cl].Reachable {
				st := res.In[g.cl].clone()
				nd := &code.Nodes[g.cl]
				if accessSafe(code, &st, nd, Access{Mem: nd.Inst.Mem, Size: 8}) {
					drop[g.cl], drop[g.cl+1] = true, true
				}
			}
			continue
		}
		if !res.In[g.cl].Reachable {
			// Unreachable guards (dead code) can go too.
			drop[g.cl], drop[g.cl+1] = true, true
			continue
		}
		st := res.In[g.cl].clone()
		nd := &code.Nodes[g.access]
		safe := true
		for _, a := range Accesses(nd.Inst) {
			if !accessSafe(code, &st, nd, a) {
				safe = false
				break
			}
		}
		if safe {
			drop[g.cl], drop[g.cl+1] = true, true
		}
	}

	var out []asm.Item
	var carry []string
	for i, it := range items {
		if drop[i] {
			carry = append(carry, it.Labels...)
			continue
		}
		it.Labels = append(carry, it.Labels...)
		carry = nil
		out = append(out, it)
	}
	if len(carry) > 0 {
		return nil, fmt.Errorf("mmdsfi: labels %v stranded by guard removal", carry)
	}
	return out, nil
}
