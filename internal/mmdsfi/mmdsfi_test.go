package mmdsfi

import (
	"encoding/binary"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mpx"
	"repro/internal/vm"
)

// domain is a minimal test stand-in for a LibOS-managed MMDSFI domain.
type domain struct {
	cpu   *vm.CPU
	dBase uint64
	dSize uint64
	sp    uint64
	entry uint64
	domID uint32
}

// loadDomain maps an image with the MMDSFI layout — code RWX, guard gap,
// data+stack RW, trailing guard — programs BND0/BND1 and rewrites
// cfi_label domain IDs, as the Occlum loader does.
func loadDomain(t testing.TB, img *asm.Image, extraData uint64) *domain {
	t.Helper()
	const base = 0x200000
	const domID = 0x42
	dSize := (img.MinDataSize() + extraData + 8192 + mem.PageSize - 1) / mem.PageSize * mem.PageSize
	total := img.DataStart() + dSize + uint64(img.GuardSize)
	m := mem.NewPaged(base, total)

	// Code pages: RWX, like the enclave page pools of SGX LibOSes (§7).
	if err := m.Map(base, img.CodeSpan(), mem.PermRWX); err != nil {
		t.Fatal(err)
	}
	code := append([]byte(nil), img.Code...)
	// Rewrite the domain ID into every cfi_label (loader behavior).
	for _, off := range isa.FindCFIMagic(code) {
		binary.LittleEndian.PutUint32(code[off+4:], domID)
	}
	if err := m.WriteDirect(base, code); err != nil {
		t.Fatal(err)
	}
	dBase := base + img.DataStart()
	if err := m.Map(dBase, dSize, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteDirect(dBase, img.Data); err != nil {
		t.Fatal(err)
	}

	c := vm.New(m)
	c.PC = base + uint64(img.Entry)
	c.Regs[isa.SP] = dBase + dSize
	c.Bnd.Set(isa.BND0, mpx.Bound{Lower: dBase, Upper: dBase + dSize - 1})
	v := isa.CFILabelValue(domID)
	c.Bnd.Set(isa.BND1, mpx.Bound{Lower: v, Upper: v})
	return &domain{cpu: c, dBase: dBase, dSize: dSize, sp: dBase + dSize, entry: c.PC, domID: domID}
}

func buildProgram(t testing.TB, f func(b *asm.Builder)) *asm.Program {
	t.Helper()
	b := asm.NewBuilder()
	f(b)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func instrumentAndLink(t testing.TB, p *asm.Program, opts Options) *asm.Image {
	t.Helper()
	ip, err := Instrument(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	img, err := asm.Link(ip)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// sumProgram computes sum(data[i]) for i in 0..n-1 over a data buffer.
func sumProgram(t testing.TB, n int) *asm.Program {
	return buildProgram(t, func(b *asm.Builder) {
		buf := make([]byte, n*8)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[i*8:], uint64(i+1))
		}
		b.Bytes("nums", buf)
		b.Entry("_start")
		b.LeaData(isa.R1, "nums")
		b.MovRI(isa.R0, 0)
		b.MovRI(isa.R2, int64(n))
		b.Label("loop")
		b.Load(isa.R3, isa.Mem(isa.R1, 0))
		b.Add(isa.R0, isa.R3)
		b.AddI(isa.R1, 8)
		b.SubI(isa.R2, 1)
		b.CmpI(isa.R2, 0)
		b.Jg("loop")
		b.Trap()
	})
}

func TestInstrumentedSemanticsPreserved(t *testing.T) {
	const n = 50
	want := uint64(n * (n + 1) / 2)
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"naive", Options{ConfineControl: true, ConfineLoads: true, ConfineStores: true}},
		{"optimized", DefaultOptions()},
		{"uninstrumented", Options{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			img := instrumentAndLink(t, sumProgram(t, n), tc.opts)
			d := loadDomain(t, img, 0)
			st := d.cpu.Run(0)
			if st.Reason != vm.StopTrap {
				t.Fatalf("stop = %v", st)
			}
			if d.cpu.Regs[isa.R0] != want {
				t.Fatalf("sum = %d, want %d", d.cpu.Regs[isa.R0], want)
			}
		})
	}
}

func TestOptimizationReducesGuards(t *testing.T) {
	p := sumProgram(t, 50)
	naive, err := Instrument(p, Options{ConfineControl: true, ConfineLoads: true, ConfineStores: true})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Instrument(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ng, og := countGuards(naive), countGuards(opt)
	if og >= ng {
		t.Fatalf("optimized has %d guards, naive %d — optimization ineffective", og, ng)
	}
	t.Logf("guards: naive=%d optimized=%d", ng, og)
}

func TestOptimizationReducesCycles(t *testing.T) {
	p := sumProgram(t, 200)
	run := func(opts Options) uint64 {
		img := instrumentAndLink(t, p, opts)
		d := loadDomain(t, img, 0)
		if st := d.cpu.Run(0); st.Reason != vm.StopTrap {
			t.Fatalf("stop = %v", st)
		}
		return d.cpu.Cycles
	}
	base := run(Options{})
	naive := run(Options{ConfineControl: true, ConfineLoads: true, ConfineStores: true})
	opt := run(DefaultOptions())
	if !(base < opt && opt < naive) {
		t.Fatalf("cycles: base=%d opt=%d naive=%d — expected base < opt < naive", base, opt, naive)
	}
	t.Logf("cycles: base=%d opt=%d (+%.1f%%) naive=%d (+%.1f%%)",
		base, opt, 100*float64(opt-base)/float64(base),
		naive, 100*float64(naive-base)/float64(base))
}

func countGuards(p *asm.Program) int {
	n := 0
	for _, it := range p.Items {
		if it.Inst.Op == isa.OpBndCLM {
			n++
		}
	}
	return n
}

func TestGuardsBlockEscapingStore(t *testing.T) {
	// A store through a corrupted pointer aimed below the data region
	// (e.g. at the LibOS) must be stopped: #BR from the mem_guard.
	p := buildProgram(t, func(b *asm.Builder) {
		b.Zero("buf", 64)
		b.Entry("_start")
		b.LeaData(isa.R1, "buf")
		b.MovRI(isa.R2, 0x200000) // absolute address outside D
		b.MovRI(isa.R3, 0xBAD)
		b.Store(isa.Mem(isa.R2, 0), isa.R3)
		b.Trap()
	})
	img := instrumentAndLink(t, p, DefaultOptions())
	d := loadDomain(t, img, 0)
	st := d.cpu.Run(0)
	if st.Reason != vm.StopException || st.Exc != vm.ExcBound {
		t.Fatalf("stop = %v, want #BR", st)
	}
}

func TestGuardsAllowNearMiss(t *testing.T) {
	// An access just past the data region passes the (coarse) guard
	// check but faults in the guard region — the #PF path.
	p := buildProgram(t, func(b *asm.Builder) {
		b.Zero("buf", 64)
		b.Entry("_start")
		b.LeaData(isa.R1, "buf")
		b.Load(isa.R2, isa.Mem(isa.R1, 0)) // confine r1 to D
		b.Trap()                           // checkpoint: ask for D size
		b.Load(isa.R3, isa.Mem(isa.R1, 0)) // covered by refinement … then escape:
		b.Trap()
	})
	img := instrumentAndLink(t, p, DefaultOptions())
	d := loadDomain(t, img, 0)
	if st := d.cpu.Run(0); st.Reason != vm.StopTrap {
		t.Fatalf("stop = %v", st)
	}
	// Point r1 at the last byte of D: the next 8-byte guarded load has
	// its address in-bounds (bndcl/bndcu pass on the address) but the
	// access spills into the guard region → #PF, not #BR.
	d.cpu.Regs[isa.R1] = d.dBase + d.dSize - 1
	st := d.cpu.Run(0)
	if st.Reason != vm.StopException || st.Exc != vm.ExcPage || !st.Fault.Unmapped {
		t.Fatalf("stop = %v, want guard-region #PF", st)
	}
}

func TestRetRewriting(t *testing.T) {
	p := buildProgram(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R1, 20)
		b.Call("double")
		b.MovRR(isa.R5, isa.R0)
		b.Trap()
		b.Func("double")
		b.MovRR(isa.R0, isa.R1)
		b.Add(isa.R0, isa.R1)
		b.Ret()
	})
	ip, err := Instrument(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range ip.Items {
		if it.Inst.Op.IsReturn() {
			t.Fatal("instrumented program still contains a raw ret")
		}
	}
	img, err := asm.Link(ip)
	if err != nil {
		t.Fatal(err)
	}
	d := loadDomain(t, img, 0)
	if st := d.cpu.Run(0); st.Reason != vm.StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if d.cpu.Regs[isa.R5] != 40 {
		t.Fatalf("result = %d, want 40", d.cpu.Regs[isa.R5])
	}
}

func TestCFIGuardBlocksWildJump(t *testing.T) {
	// Jumping through a corrupted pointer to a non-cfi_label address
	// must raise #BR in the cfi_guard.
	p := buildProgram(t, func(b *asm.Builder) {
		b.Entry("_start")
		b.MovRI(isa.R1, 0x200000+3) // somewhere in code, not a label
		b.JmpR(isa.R1)
	})
	img := instrumentAndLink(t, p, DefaultOptions())
	d := loadDomain(t, img, 0)
	st := d.cpu.Run(0)
	if st.Reason != vm.StopException || st.Exc != vm.ExcBound {
		t.Fatalf("stop = %v, want #BR from cfi_guard", st)
	}
}

func TestCFIGuardWrongDomainID(t *testing.T) {
	// A forged cfi_label with the wrong domain ID (written into the
	// data region by the attacker) fails the equality check against
	// BND1 — inter-process isolation.
	p := buildProgram(t, func(b *asm.Builder) {
		var forged [8]byte
		copy(forged[:4], isa.CFIMagic[:])
		binary.LittleEndian.PutUint32(forged[4:], 0x99) // other domain
		b.Bytes("fake", forged[:])
		b.Entry("_start")
		b.LeaData(isa.R1, "fake")
		b.JmpR(isa.R1)
	})
	img := instrumentAndLink(t, p, DefaultOptions())
	d := loadDomain(t, img, 0)
	st := d.cpu.Run(0)
	if st.Reason != vm.StopException || st.Exc != vm.ExcBound {
		t.Fatalf("stop = %v, want #BR", st)
	}
}

func TestCFIGuardCorrectLabelInDataIsNXBlocked(t *testing.T) {
	// Even a *correct* forged cfi_label in the data region passes the
	// cfi_guard value check but cannot execute: data pages are NX.
	// (The paper's defense-in-depth against code injection, §7.)
	p := buildProgram(t, func(b *asm.Builder) {
		var forged [8]byte
		copy(forged[:4], isa.CFIMagic[:])
		binary.LittleEndian.PutUint32(forged[4:], 0x42) // this domain's ID
		b.Bytes("fake", forged[:])
		b.Entry("_start")
		b.LeaData(isa.R1, "fake")
		b.JmpR(isa.R1)
	})
	img := instrumentAndLink(t, p, DefaultOptions())
	d := loadDomain(t, img, 0)
	st := d.cpu.Run(0)
	if st.Reason != vm.StopException || st.Exc != vm.ExcPage || st.Fault.Access != mem.AccessExec {
		t.Fatalf("stop = %v, want exec #PF", st)
	}
}

func TestIndirectCallThroughFunctionPointerWorks(t *testing.T) {
	// A legitimate indirect call to a real function (which starts with
	// a cfi_label carrying this domain's ID) passes the cfi_guard.
	p := buildProgram(t, func(b *asm.Builder) {
		b.Zero("fnptr", 8)
		b.Entry("_start")
		// Materialize the function address via call/pop trick: call
		// a helper that stores its return address; simpler here, use
		// a direct call first to warm, then an indirect one.
		b.MovRI(isa.R6, 0)
		b.Call("getaddr") // leaves the address of "fn" in r6
		b.CallR(isa.R6)
		b.Trap()
		b.Func("fn")
		b.MovRI(isa.R0, 77)
		b.Ret()
		// getaddr: returns the address of fn by lea on pc. The
		// distance is link-time constant but unknown to the test, so
		// compute from the return address: fn follows the trap (1)
		// at a fixed assembled offset... Instead, expose fn's address
		// through data: not expressible without an address-of-label
		// primitive, so emulate with a jump table built by the
		// caller below.
		b.Func("getaddr")
		b.Ret()
	})
	// Address-of-label needs loader help; patch fnptr at runtime
	// instead: run until the first trap, then scan code for the second
	// cfi_label (fn's) and set r6.
	img := instrumentAndLink(t, p, DefaultOptions())
	d := loadDomain(t, img, 0)

	// Find fn's cfi_label: it is the one immediately preceding
	// "movri r0, 77". Scan decoded code for that movri.
	code, err := d.cpu.Mem.ReadDirect(0x200000, len(img.Code))
	if err != nil {
		t.Fatal(err)
	}
	fnAddr := uint64(0)
	for _, off := range isa.FindCFIMagic(code) {
		in, _, derr := isa.Decode(code, off+isa.CFILabelLen)
		if derr == nil && in.Op == isa.OpMovRI && in.Imm == 77 {
			fnAddr = 0x200000 + uint64(off)
		}
	}
	if fnAddr == 0 {
		t.Fatal("fn cfi_label not found")
	}

	// Run: _start moves 0 into r6, calls getaddr (which returns), then
	// does callr r6 — patch r6 right before by single-stepping until
	// the callr would execute with r6 == 0. Simpler: set r6 now and
	// start at _start; the movri will overwrite it... so instead patch
	// the immediate of "movri r6, 0" in code (trusted write).
	for off := 0; off < len(code); {
		in, n, derr := isa.Decode(code, off)
		if derr != nil {
			t.Fatalf("decode at %d: %v", off, derr)
		}
		if in.Op == isa.OpMovRI && in.R1 == isa.R6 {
			var imm [8]byte
			binary.LittleEndian.PutUint64(imm[:], fnAddr)
			if err := d.cpu.Mem.WriteDirect(0x200000+uint64(off)+2, imm[:]); err != nil {
				t.Fatal(err)
			}
			break
		}
		off += n
	}
	st := d.cpu.Run(0)
	if st.Reason != vm.StopTrap {
		t.Fatalf("stop = %v", st)
	}
	if d.cpu.Regs[isa.R0] != 77 {
		t.Fatalf("r0 = %d, want 77", d.cpu.Regs[isa.R0])
	}
}

func TestSelectiveConfinement(t *testing.T) {
	p := sumProgram(t, 10)
	loads, err := Instrument(p, Options{ConfineLoads: true})
	if err != nil {
		t.Fatal(err)
	}
	stores, err := Instrument(p, Options{ConfineStores: true})
	if err != nil {
		t.Fatal(err)
	}
	// The sum loop has loads but no stores (no push/pop without CFI).
	if countGuards(loads) == 0 {
		t.Fatal("load confinement inserted no guards")
	}
	if countGuards(stores) != 0 {
		t.Fatalf("store confinement inserted %d guards for a store-free program", countGuards(stores))
	}
}

func TestHoistingEmitsPreheaderGuard(t *testing.T) {
	p := sumProgram(t, 50)
	opt, err := Instrument(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The optimized loop body must not contain a guard: find the
	// backward branch and check no bndclm between its target and it.
	items := opt.Items
	labels := map[string]int{}
	for i, it := range items {
		for _, l := range it.Labels {
			labels[l] = i
		}
	}
	for i, it := range items {
		if it.Inst.Op == isa.OpJg && labels[it.Inst.Label] <= i {
			for j := labels[it.Inst.Label]; j <= i; j++ {
				if items[j].Inst.Op == isa.OpBndCLM {
					t.Fatalf("guard remains inside optimized loop at item %d", j)
				}
			}
			return
		}
	}
	t.Fatal("loop back edge not found")
}

func TestAValJoin(t *testing.T) {
	g := int64(4096)
	cases := []struct {
		a, b, want AVal
	}{
		{DPtr(0, 0), DPtr(-8, -8), DPtr(-8, 0)},
		{DPtr(0, 0), Top, Top},
		{Const(1, 1), Const(5, 5), Const(1, 5)},
		{DPtr(0, 0), Const(0, 0), Top},
		{DPtr(0, 0), DPtr(3*g, 3*g), Top}, // widened
	}
	for i, c := range cases {
		if got := c.a.Join(c.b, 2*g); got != c.want {
			t.Errorf("case %d: %v ⊔ %v = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestAnalysisProvesStaticDataAccess(t *testing.T) {
	// A PC-relative access to initialized data needs no runtime guard.
	p := buildProgram(t, func(b *asm.Builder) {
		b.Zero("x", 8)
		b.Entry("_start")
		b.MovRI(isa.R1, 7)
		b.StoreData("x", isa.R1)
		b.Trap()
	})
	ip, err := Instrument(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if countGuards(ip) != 0 {
		t.Fatalf("static data access guarded %d times, want 0", countGuards(ip))
	}
}
