package mmdsfi

import (
	"fmt"
	"math"
)

// Kind classifies an abstract value in the range analysis.
type Kind uint8

// Abstract value kinds.
const (
	// KTop is an unknown value.
	KTop Kind = iota
	// KConst is a known absolute interval [Lo, Hi]. Constants are never
	// provably inside a domain (the paper's Figure 4 rejects direct
	// memory offsets because "no fixed addresses can be assumed to be
	// within a domain").
	KConst
	// KDPtr is a data-region-relative interval: the value lies in
	// [D.begin+Lo, D.end-1+Hi]. The two offsets are relative to the two
	// ends of the data region, so facts proven by bound checks
	// generalize to any actual data-region size.
	KDPtr
)

// AVal is an abstract value of the cfi_label-aware range analysis (§4.3).
type AVal struct {
	K      Kind
	Lo, Hi int64
}

// Top is the unknown abstract value.
var Top = AVal{K: KTop}

// Const returns the abstract constant interval [lo, hi].
func Const(lo, hi int64) AVal { return AVal{K: KConst, Lo: lo, Hi: hi} }

// DPtr returns the data-relative interval: a value known to lie within
// [D.begin+lo, D.end-1+hi].
func DPtr(lo, hi int64) AVal { return AVal{K: KDPtr, Lo: lo, Hi: hi} }

// String renders the value for diagnostics.
func (v AVal) String() string {
	switch v.K {
	case KTop:
		return "⊤"
	case KConst:
		return fmt.Sprintf("const[%d,%d]", v.Lo, v.Hi)
	case KDPtr:
		return fmt.Sprintf("D[begin%+d,end%+d]", v.Lo, v.Hi)
	}
	return "?"
}

func satAdd(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, false
	}
	return s, true
}

// AddConst shifts v by the constant interval [lo, hi]. The result is Top on
// overflow or when v is not shiftable.
func (v AVal) AddConst(lo, hi int64) AVal {
	switch v.K {
	case KConst, KDPtr:
		nlo, ok1 := satAdd(v.Lo, lo)
		nhi, ok2 := satAdd(v.Hi, hi)
		if !ok1 || !ok2 {
			return Top
		}
		return AVal{K: v.K, Lo: nlo, Hi: nhi}
	}
	return Top
}

// Add computes the abstract sum of two values. DPtr+Const keeps the
// data-relative form; Const+Const stays constant; anything else is Top
// (in particular DPtr+DPtr: the sum of two pointers is meaningless).
func (v AVal) Add(o AVal) AVal {
	switch {
	case v.K == KConst && o.K == KConst:
		return o.AddConst(v.Lo, v.Hi)
	case v.K == KDPtr && o.K == KConst:
		return v.AddConst(o.Lo, o.Hi)
	case v.K == KConst && o.K == KDPtr:
		return o.AddConst(v.Lo, v.Hi)
	}
	return Top
}

// Sub computes v - o.
func (v AVal) Sub(o AVal) AVal {
	if o.K != KConst {
		return Top
	}
	neg := Const(-o.Hi, -o.Lo)
	if o.Hi == math.MinInt64 || o.Lo == math.MinInt64 {
		return Top
	}
	return v.Add(neg)
}

// MulConst multiplies a constant interval by a non-negative scale.
func (v AVal) MulConst(k int64) AVal {
	if v.K != KConst || k < 0 {
		return Top
	}
	lo, hi := v.Lo*k, v.Hi*k
	if k != 0 && (lo/k != v.Lo || hi/k != v.Hi) {
		return Top
	}
	return Const(lo, hi)
}

// Join computes the least upper bound of two abstract values, widening to
// Top when the joined interval grows beyond widenLimit (which guarantees
// analysis termination).
//
// The widening rule differs by kind. For constants, Hi-Lo is the interval
// width. For DPtr values, Lo and Hi are measured from *different ends* of
// the data region, so Hi-Lo is not a width (a tight value such as a
// static-data address has Hi far below Lo); instead each offset is capped
// at the widen limit, which is all the access check ever needs (it only
// compares the offsets against the guard size).
func (v AVal) Join(o AVal, widenLimit int64) AVal {
	if v == o {
		return v
	}
	if v.K != o.K || v.K == KTop {
		return Top
	}
	lo, hi := min64(v.Lo, o.Lo), max64(v.Hi, o.Hi)
	switch v.K {
	case KConst:
		if hi-lo < 0 || hi-lo > widenLimit {
			return Top
		}
	case KDPtr:
		if lo < -widenLimit || hi > widenLimit {
			return Top
		}
	}
	return AVal{K: v.K, Lo: lo, Hi: hi}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
