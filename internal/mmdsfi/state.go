package mmdsfi

import (
	"repro/internal/isa"
)

// CheckedExpr records a memory-operand expression base+index*scale+δ that
// has been proven to evaluate into the data region for some δ in
// [DLo, DHi]. Together with the guard regions, a checked expression proves
// accesses at nearby displacements safe: any address within a guard-size
// of a point in D either lands in D or faults in a guard region.
type CheckedExpr struct {
	Base     isa.Reg
	Index    isa.Reg
	Scale    uint8
	DLo, DHi int64
	// LB and UB record which half of the mem_guard has been seen (a
	// bndcl proves the lower side, a bndcu the upper side). Both must
	// hold for the expression to count as fully checked.
	LB, UB bool
}

func (e CheckedExpr) checked() bool { return e.LB && e.UB }

// matches reports whether e covers the operand (base,index,scale).
func (e CheckedExpr) matches(m isa.MemRef) bool {
	return e.Base == m.Base && e.Index == m.Index && (!m.HasIndex() || e.Scale == m.Scale)
}

// State is the abstract machine state at one program point: an abstract
// value per register plus the set of checked memory expressions.
type State struct {
	Regs  [isa.NumRegs]AVal
	Exprs []CheckedExpr
	// Reachable distinguishes the unexplored bottom state from an
	// all-Top state.
	Reachable bool
}

// TopState returns the state at an analysis entry point: every register
// unknown, no checked expressions. Per the paper's coarse CFI, every
// cfi_label may be reached from any indirect transfer in the domain, so
// nothing can be assumed there.
func TopState() State {
	return State{Reachable: true}
}

func (s State) clone() State {
	ns := s
	ns.Exprs = append([]CheckedExpr(nil), s.Exprs...)
	return ns
}

// join merges o into s, returning true if s changed. The bottom
// (unreachable) state is the identity. When force is true (the node's join
// budget is exhausted), any register or expression still changing is
// widened straight to its top, guaranteeing termination while leaving
// already-stable facts — like a loop pointer anchored by re-checks —
// untouched.
func (s *State) join(o State, widenLimit int64, force bool) bool {
	if !o.Reachable {
		return false
	}
	if !s.Reachable {
		*s = o.clone()
		return true
	}
	changed := false
	for i := range s.Regs {
		nv := s.Regs[i].Join(o.Regs[i], widenLimit)
		if force && nv != s.Regs[i] {
			nv = Top
		}
		if nv != s.Regs[i] {
			s.Regs[i] = nv
			changed = true
		}
	}
	// Keep only expressions present in both, with hulled displacement
	// ranges and conjoined check flags.
	var kept []CheckedExpr
	for _, e := range s.Exprs {
		for _, f := range o.Exprs {
			if e.Base == f.Base && e.Index == f.Index && e.Scale == f.Scale {
				m := CheckedExpr{
					Base: e.Base, Index: e.Index, Scale: e.Scale,
					DLo: min64(e.DLo, f.DLo), DHi: max64(e.DHi, f.DHi),
					LB: e.LB && f.LB, UB: e.UB && f.UB,
				}
				if force && m != e {
					break // still changing: widen away
				}
				if m.DHi-m.DLo >= 0 && m.DHi-m.DLo <= widenLimit {
					kept = append(kept, m)
				}
				break
			}
		}
	}
	if len(kept) != len(s.Exprs) {
		changed = true
	} else {
		for i := range kept {
			if kept[i] != s.Exprs[i] {
				changed = true
				break
			}
		}
	}
	s.Exprs = kept
	return changed
}

// killReg invalidates everything that depended on register r, unless the
// write was "r += delta" with a known constant delta, in which case
// dependent expressions and the register's own abstract value shift.
func (s *State) killReg(r isa.Reg, shift *int64) {
	var kept []CheckedExpr
	for _, e := range s.Exprs {
		if e.Base != r && e.Index != r {
			kept = append(kept, e)
			continue
		}
		if shift != nil && e.Base == r && e.Index != r {
			// base moved by +delta ⇒ same address is expressed
			// with displacement reduced by delta.
			e.DLo -= *shift
			e.DHi -= *shift
			kept = append(kept, e)
		}
	}
	s.Exprs = kept
}

// setExpr records or refines a checked expression.
func (s *State) setExpr(m isa.MemRef, d int64, lb, ub bool) {
	for i := range s.Exprs {
		e := &s.Exprs[i]
		if e.Base == m.Base && e.Index == m.Index && e.Scale == m.Scale {
			if e.DLo == d && e.DHi == d {
				e.LB = e.LB || lb
				e.UB = e.UB || ub
				return
			}
			// A fresh exact check replaces the old range when it
			// proves both sides; otherwise keep the stronger fact.
			if lb && ub {
				e.DLo, e.DHi, e.LB, e.UB = d, d, true, true
				return
			}
			if e.checked() {
				return // existing full check is stronger
			}
			e.DLo, e.DHi = d, d
			e.LB = e.LB || lb
			e.UB = e.UB || ub
			return
		}
	}
	scale := m.Scale
	if !m.HasIndex() {
		scale = 1
	}
	s.Exprs = append(s.Exprs, CheckedExpr{
		Base: m.Base, Index: m.Index, Scale: scale,
		DLo: d, DHi: d, LB: lb, UB: ub,
	})
}

// lookupExpr finds the checked expression covering operand m, if any.
func (s *State) lookupExpr(m isa.MemRef) (CheckedExpr, bool) {
	for _, e := range s.Exprs {
		if e.matches(m) && e.checked() {
			return e, true
		}
	}
	return CheckedExpr{}, false
}
