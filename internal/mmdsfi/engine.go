package mmdsfi

import (
	"repro/internal/isa"
)

// Node is one instruction in the analysis representation, shared between
// the instrumenter's optimizer and the verifier's Stage 4.
type Node struct {
	// Inst is the instruction.
	Inst isa.Inst
	// Target is the node index of a direct branch target, or -1.
	Target int
	// Addr and Next are the code offsets of this instruction and of the
	// instruction after it (used to resolve PC-relative operands).
	Addr, Next uint64
	// Exempt marks the load of a cfi_guard sequence, which reads the
	// prospective jump target's bytes and is not subject to the memory
	// access policy (it is part of the pseudo-instruction; a wild
	// pointer makes it fault, which is safe).
	Exempt bool
}

// Access describes one memory access performed by a node.
type Access struct {
	// Mem is the accessed operand (for implicit stack accesses it is
	// the synthesized [sp-8] or [sp+0] operand).
	Mem isa.MemRef
	// Size is the access width in bytes.
	Size int
	// Store is true for writes.
	Store bool
}

// Accesses returns the data-memory accesses performed by in, including the
// implicit stack accesses of push/pop/call/ret (the paper's "implicit
// register-based" category).
func Accesses(in isa.Inst) []Access {
	var out []Access
	if kind, size := in.Op.MemUse(); kind == isa.MemLoad || kind == isa.MemStore || kind == isa.MemScatter {
		out = append(out, Access{Mem: in.Mem, Size: size, Store: kind != isa.MemLoad})
	}
	if kind, ok := in.Op.HasImplicitStackAccess(); ok {
		m := isa.Mem(isa.SP, 0)
		if kind == isa.MemStore {
			m = isa.Mem(isa.SP, -8)
		}
		out = append(out, Access{Mem: m, Size: 8, Store: kind == isa.MemStore})
	}
	return out
}

// Code is the unit of analysis: the instruction nodes plus the layout
// facts the analysis needs.
type Code struct {
	Nodes []Node
	// GuardSize is the size of the guard regions around the data region
	// (and of the code/data gap).
	GuardSize int64
	// CodeSpan is the page-padded code size; the data region begins at
	// CodeSpan+GuardSize, which is how PC-relative operands resolve to
	// data-relative values.
	CodeSpan int64
	// MinData is the minimum data-region size the loader guarantees;
	// PC-relative upper bounds are derived from it.
	MinData int64
}

// Result is the outcome of the range analysis.
type Result struct {
	// In is the abstract state at entry to each node (In[i].Reachable
	// is false for unreachable nodes).
	In []State
	// Proven[i] is true when every access of node i is statically
	// proven to stay within [D.begin-G, D.end+G) — i.e. to either land
	// in the data region or fault in a guard region.
	Proven []bool
}

// maxJoinsBeforeWiden bounds how many times a node's input state may
// change before joins at that node widen aggressively, guaranteeing
// termination.
const maxJoinsBeforeWiden = 12

// Analyze runs the cfi_label-aware range analysis of §4.3/§5 over code,
// starting from the given entry nodes plus every cfi_label (any of which
// may be reached by an indirect transfer under MMDSFI's coarse CFI).
func Analyze(code *Code, entries []int) *Result {
	n := len(code.Nodes)
	res := &Result{In: make([]State, n), Proven: make([]bool, n)}
	if n == 0 {
		return res
	}
	joins := make([]int, n)

	var work []int
	push := func(i int) { work = append(work, i) }
	propagate := func(i int, s State) {
		if i < 0 || i >= n {
			return
		}
		force := joins[i] > maxJoinsBeforeWiden
		if res.In[i].join(s, 2*code.GuardSize, force) {
			joins[i]++
			push(i)
		}
	}

	for _, e := range entries {
		propagate(e, TopState())
	}
	for i, nd := range code.Nodes {
		if nd.Inst.Op == isa.OpCFILabel {
			propagate(i, TopState())
		}
	}

	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		st := res.In[i].clone()
		nd := &code.Nodes[i]

		proven := true
		if !nd.Exempt {
			for _, a := range Accesses(nd.Inst) {
				if nd.Inst.Op == isa.OpVScatter {
					proven = false // multiple non-contiguous targets
					continue
				}
				if !accessSafe(code, &st, nd, a) {
					proven = false
				}
			}
		}
		res.Proven[i] = proven

		// The successful-access refinement must not apply to exempt
		// (cfi_guard) loads: they read the code region, not D.
		transfer(code, &st, nd, proven && !nd.Exempt)

		op := nd.Inst.Op
		switch {
		case op == isa.OpJmp:
			propagate(nd.Target, st)
		case op.IsCondBranch():
			propagate(nd.Target, st)
			propagate(i+1, st)
		case op == isa.OpCall:
			propagate(nd.Target, st)
			// The matching return arrives at the fallthrough via an
			// indirect jump; model the post-return state as unknown.
			propagate(i+1, TopState())
		case op.IsRegIndirect(), op.IsMemIndirect(), op.IsReturn():
			// Successors are cfi_labels, which are entries already.
			if op == isa.OpCallR || op == isa.OpCallM {
				propagate(i+1, TopState())
			}
		case op == isa.OpTrap:
			// The LibOS returns control to the cfi_label after the
			// trap (trampoline protocol); model as unknown state.
			propagate(i+1, TopState())
		case op.IsUncondTransfer():
			// halt, eexit: no successors.
		default:
			propagate(i+1, st)
		}
	}
	return res
}

// evalMem computes the abstract effective address of operand m.
func evalMem(code *Code, st *State, nd *Node, m isa.MemRef) AVal {
	switch {
	case m.IsAbs():
		return Const(int64(m.Disp), int64(m.Disp))
	case m.IsPCRel():
		// ea = codeBase + Next + disp; the data region starts at
		// codeBase + CodeSpan + GuardSize, so relative to D.begin the
		// address is a known constant c ≥ -(CodeSpan+GuardSize).
		c := int64(nd.Next) + int64(m.Disp) - code.CodeSpan - code.GuardSize
		// Relative to D.end-1 we only know DSize ≥ MinData.
		return DPtr(c, c-code.MinData+1)
	}
	a := st.Regs[m.Base]
	if m.HasIndex() {
		idx := st.Regs[m.Index].MulConst(int64(m.Scale))
		a = a.Add(idx)
	}
	return a.AddConst(int64(m.Disp), int64(m.Disp))
}

// accessSafe reports whether access a of node nd is proven to land within
// the window [D.begin-G, D.end+G), where any non-D address faults in a
// guard region.
func accessSafe(code *Code, st *State, nd *Node, a Access) bool {
	g := code.GuardSize
	av := evalMem(code, st, nd, a.Mem)
	if av.K == KDPtr && av.Lo >= -g && av.Hi+int64(a.Size)-1 <= g {
		return true
	}
	// Fall back to the checked-expression set.
	if a.Mem.IsAbs() || a.Mem.IsPCRel() {
		return false
	}
	e, ok := st.lookupExpr(a.Mem)
	if !ok {
		return false
	}
	d := int64(a.Mem.Disp)
	slack := g - int64(a.Size)
	return d-e.DLo <= slack && d-e.DLo >= -slack &&
		e.DHi-d <= slack && e.DHi-d >= -slack
}

// transfer applies the abstract semantics of nd to st. proven indicates
// that all of nd's accesses were statically proven in-window, enabling the
// successful-access refinement (an in-window access that did not fault
// must have landed inside D).
func transfer(code *Code, st *State, nd *Node, proven bool) {
	in := nd.Inst
	setReg := func(r isa.Reg, v AVal) {
		st.killReg(r, nil)
		st.Regs[r] = v
	}
	shiftReg := func(r isa.Reg, delta int64) {
		st.killReg(r, &delta)
		st.Regs[r] = st.Regs[r].AddConst(delta, delta)
	}
	refine := func(m isa.MemRef, size int) {
		if !proven || m.IsAbs() || m.IsPCRel() {
			return
		}
		st.setExpr(m, int64(m.Disp), true, true)
		if !m.HasIndex() {
			d := int64(m.Disp)
			st.Regs[m.Base] = DPtr(-d, -d-int64(size)+1)
		}
	}

	switch in.Op {
	case isa.OpMovRI:
		setReg(in.R1, Const(in.Imm, in.Imm))
	case isa.OpMovRR:
		v := st.Regs[in.R2]
		setReg(in.R1, v)
	case isa.OpLoad, isa.OpLoadB:
		refine(in.Mem, accessSize(in.Op))
		setReg(in.R1, Top)
	case isa.OpStore, isa.OpStoreB:
		refine(in.Mem, accessSize(in.Op))
	case isa.OpLea:
		v := evalMem(code, st, nd, in.Mem)
		setReg(in.R1, v)
	case isa.OpPush, isa.OpPushI:
		refine(isa.Mem(isa.SP, -8), 8)
		shiftReg(isa.SP, -8)
	case isa.OpPop:
		refine(isa.Mem(isa.SP, 0), 8)
		if in.R1 == isa.SP {
			setReg(isa.SP, Top)
		} else {
			setReg(in.R1, Top)
			shiftReg(isa.SP, 8)
		}
	case isa.OpAddRI:
		shiftReg(in.R1, in.Imm)
	case isa.OpSubRI:
		shiftReg(in.R1, -in.Imm)
	case isa.OpAddRR:
		if v := st.Regs[in.R2]; v.K == KConst && v.Lo == v.Hi {
			shiftReg(in.R1, v.Lo)
		} else {
			sum := st.Regs[in.R1].Add(v)
			setReg(in.R1, sum)
		}
	case isa.OpSubRR:
		if v := st.Regs[in.R2]; v.K == KConst && v.Lo == v.Hi && in.R1 != in.R2 {
			shiftReg(in.R1, -v.Lo)
		} else if in.R1 == in.R2 {
			setReg(in.R1, Const(0, 0))
		} else {
			diff := st.Regs[in.R1].Sub(v)
			setReg(in.R1, diff)
		}
	case isa.OpMulRI:
		v := st.Regs[in.R1].MulConst(in.Imm)
		setReg(in.R1, v)
	case isa.OpAndRI:
		// Masking with a non-negative immediate bounds the value.
		if in.Imm >= 0 {
			setReg(in.R1, Const(0, in.Imm))
		} else {
			setReg(in.R1, Top)
		}
	case isa.OpMulRR, isa.OpDivRR, isa.OpModRR, isa.OpAndRR, isa.OpOrRR,
		isa.OpXorRR, isa.OpShlRR, isa.OpShrRR, isa.OpOrRI, isa.OpXorRI,
		isa.OpShlRI, isa.OpShrRI, isa.OpNeg, isa.OpNot:
		setReg(in.R1, Top)
	case isa.OpCmpRR, isa.OpCmpRI, isa.OpTestRR:
		// Flags only.
	case isa.OpBndCLM, isa.OpBndCUM:
		if in.Bnd == isa.BND0 && !in.Mem.IsAbs() && !in.Mem.IsPCRel() {
			st.setExpr(in.Mem, int64(in.Mem.Disp), in.Op == isa.OpBndCLM, in.Op == isa.OpBndCUM)
			if e, ok := st.lookupExpr(in.Mem); ok && !in.Mem.HasIndex() && e.DLo == e.DHi {
				st.Regs[in.Mem.Base] = DPtr(-e.DLo, -e.DLo)
			}
		}
	case isa.OpBndCL, isa.OpBndCU:
		if in.Bnd == isa.BND0 {
			m := isa.Mem(in.R1, 0)
			st.setExpr(m, 0, in.Op == isa.OpBndCL, in.Op == isa.OpBndCU)
			if e, ok := st.lookupExpr(m); ok && e.DLo == e.DHi {
				st.Regs[in.R1] = DPtr(-e.DLo, -e.DLo)
			}
		}
	case isa.OpCall:
		refine(isa.Mem(isa.SP, -8), 8)
		shiftReg(isa.SP, -8)
	case isa.OpCallR, isa.OpCallM:
		refine(isa.Mem(isa.SP, -8), 8)
		shiftReg(isa.SP, -8)
	case isa.OpRet, isa.OpRetI:
		refine(isa.Mem(isa.SP, 0), 8)
	}
}

func accessSize(op isa.Op) int {
	if op == isa.OpLoadB || op == isa.OpStoreB {
		return 1
	}
	return 8
}
