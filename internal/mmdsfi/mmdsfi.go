// Package mmdsfi implements MPX-based, Multi-Domain Software Fault
// Isolation — the paper's §4 — as a transformation over asm.Programs, plus
// the cfi_label-aware range analysis (§4.3) that both the instrumenter's
// optimizer and the verifier's Stage 4 rely on.
//
// The instrumentation enforces two policies inside a domain with code
// region C and data region D:
//
//   - Memory access policy: every memory access lands in [D.begin, D.end),
//     enforced by mem_guard pseudo-instructions (a bndcl/bndcu pair
//     against BND0) plus the guard regions around D.
//   - Control transfer policy: every control transfer targets C, enforced
//     by rewriting returns, guarding register-indirect transfers with
//     cfi_guard (an 8-byte load compared for equality against BND1, which
//     holds the domain's cfi_label value), and placing cfi_labels at every
//     valid indirect target.
//
// The two optimizations of §4.3 are implemented: redundant check
// elimination and loop check hoisting, both justified by the range
// analysis in engine.go and both verifiable by the independent verifier.
package mmdsfi

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
)

// Options selects which confinements the instrumenter applies. The
// selective switches exist to reproduce the paper's Figure 7b overhead
// breakdown; production use keeps everything on.
type Options struct {
	// ConfineControl enables the CFI pass: cfi_labels, cfi_guards and
	// return rewriting.
	ConfineControl bool
	// ConfineLoads guards memory loads (including pop's implicit load).
	ConfineLoads bool
	// ConfineStores guards memory stores (including push/call's
	// implicit store).
	ConfineStores bool
	// Optimize enables redundant check elimination and loop check
	// hoisting. Off, the instrumenter is the paper's "naive"
	// implementation: one mem_guard per access.
	Optimize bool
}

// DefaultOptions enables full confinement with optimizations.
func DefaultOptions() Options {
	return Options{ConfineControl: true, ConfineLoads: true, ConfineStores: true, Optimize: true}
}

// GuardSize is the guard-region size the instrumentation assumes,
// identical to the linker's code/data gap.
const GuardSize = asm.DefaultGuardSize

// Instrument applies MMDSFI to a program, returning a new program. The
// input program is not modified.
func Instrument(p *asm.Program, opts Options) (*asm.Program, error) {
	out := &asm.Program{
		FuncLabels: copyset(p.FuncLabels),
		Entry:      p.Entry,
		Data:       append([]byte(nil), p.Data...),
		DataSyms:   copymap(p.DataSyms),
		BSS:        p.BSS,
	}
	items := append([]asm.Item(nil), p.Items...)

	var err error
	if opts.ConfineControl {
		items, err = cfiPass(items, out.FuncLabels)
		if err != nil {
			return nil, err
		}
	}
	items, err = memGuardPass(items, out, opts)
	if err != nil {
		return nil, err
	}
	out.Items = items
	return out, nil
}

func copyset(s map[string]bool) map[string]bool {
	n := make(map[string]bool, len(s))
	for k, v := range s {
		n[k] = v
	}
	return n
}

func copymap(s map[string]uint32) map[string]uint32 {
	n := make(map[string]uint32, len(s))
	for k, v := range s {
		n[k] = v
	}
	return n
}

// cfiGuardItems emits the cfi_guard pseudo-instruction for a target
// register: load the 8 bytes at the target into the guard scratch
// register and equality-check them against BND1.
func cfiGuardItems(target isa.Reg) []asm.Item {
	return []asm.Item{
		{Inst: isa.Inst{Op: isa.OpLoad, R1: isa.GuardScratch, Mem: isa.Mem(target, 0)}},
		{Inst: isa.Inst{Op: isa.OpBndCL, Bnd: isa.BND1, R1: isa.GuardScratch}},
		{Inst: isa.Inst{Op: isa.OpBndCU, Bnd: isa.BND1, R1: isa.GuardScratch}},
	}
}

// cfiPass performs the control-transfer instrumentation.
func cfiPass(items []asm.Item, funcLabels map[string]bool) ([]asm.Item, error) {
	out := make([]asm.Item, 0, len(items)*2)
	for _, it := range items {
		op := it.Inst.Op
		isFuncEntry := false
		for _, l := range it.Labels {
			if funcLabels[l] {
				isFuncEntry = true
				break
			}
		}
		if isFuncEntry {
			// The cfi_label takes over all the labels so that both
			// direct and indirect arrivals execute from it.
			out = append(out, asm.Item{Inst: isa.Inst{Op: isa.OpCFILabel}, Labels: it.Labels})
			it.Labels = nil
		}

		switch {
		case op.IsReturn():
			// ret → pop r13; [add sp, imm;] cfi_guard r13; jmp r13
			pop := asm.Item{Inst: isa.Inst{Op: isa.OpPop, R1: isa.RetScratch}, Labels: it.Labels}
			out = append(out, pop)
			if op == isa.OpRetI && it.Inst.Imm != 0 {
				out = append(out, asm.Item{Inst: isa.Inst{Op: isa.OpAddRI, R1: isa.SP, Imm: it.Inst.Imm}})
			}
			out = append(out, cfiGuardItems(isa.RetScratch)...)
			out = append(out, asm.Item{Inst: isa.Inst{Op: isa.OpJmpR, R1: isa.RetScratch}})

		case op.IsRegIndirect():
			if it.Inst.R1 == isa.GuardScratch {
				return nil, fmt.Errorf("mmdsfi: indirect transfer through reserved register %s", isa.GuardScratch)
			}
			g := cfiGuardItems(it.Inst.R1)
			g[0].Labels = it.Labels
			it.Labels = nil
			out = append(out, g...)
			out = append(out, it)
			if op == isa.OpCallR {
				// Return site: the rewritten callee return jumps here.
				out = append(out, asm.Item{Inst: isa.Inst{Op: isa.OpCFILabel}})
			}

		case op == isa.OpCall:
			out = append(out, it)
			out = append(out, asm.Item{Inst: isa.Inst{Op: isa.OpCFILabel}})

		case op.IsMemIndirect():
			return nil, fmt.Errorf("mmdsfi: memory-based indirect transfer %s is not supported (the verifier rejects it)", op)

		default:
			out = append(out, it)
		}
	}
	return out, nil
}

// guardRef tracks an inserted mem_guard pair for the optimizer.
type guardRef struct {
	cl     int // item index of the bndcl (bndcu is cl+1)
	access int // item index of the guarded access, or -1 for hoisted guards
}

// memGuardPass inserts mem_guard pairs before unsafe accesses and, when
// optimizing, removes the ones the range analysis proves redundant after
// hoisting loop-invariant checks.
func memGuardPass(items []asm.Item, p *asm.Program, opts Options) ([]asm.Item, error) {
	if !opts.ConfineLoads && !opts.ConfineStores {
		return items, nil
	}
	items, guards, err := insertAllGuards(items, opts)
	if err != nil {
		return nil, err
	}
	if !opts.Optimize {
		return items, nil
	}
	items, guards, err = hoistLoopGuards(items, guards, p, opts)
	if err != nil {
		return nil, err
	}
	return removeRedundantGuards(items, guards, p)
}

// needsGuard reports whether the instruction's accesses fall under the
// enabled confinement options.
func needsGuard(in isa.Inst, opts Options) (isa.MemRef, bool) {
	for _, a := range Accesses(in) {
		if a.Store && !opts.ConfineStores {
			continue
		}
		if !a.Store && !opts.ConfineLoads {
			continue
		}
		if a.Mem.IsPCRel() || a.Mem.IsAbs() {
			// PC-relative data references are resolved by the linker
			// into the data region and proven by the verifier's
			// range analysis; absolute operands are rejected by the
			// verifier outright. Neither gets a runtime guard.
			continue
		}
		return a.Mem, true
	}
	return isa.MemRef{}, false
}

func guardPair(m isa.MemRef, dataSym string) []asm.Item {
	return []asm.Item{
		{Inst: isa.Inst{Op: isa.OpBndCLM, Bnd: isa.BND0, Mem: m}, DataSym: dataSym},
		{Inst: isa.Inst{Op: isa.OpBndCUM, Bnd: isa.BND0, Mem: m}, DataSym: dataSym},
	}
}

// insertAllGuards is the naive instrumentation: one mem_guard pair before
// every in-scope access. The guard inherits the access's labels so direct
// branches cannot skip it.
func insertAllGuards(items []asm.Item, opts Options) ([]asm.Item, []guardRef, error) {
	exempt := markExempt(items)
	out := make([]asm.Item, 0, len(items)*2)
	var guards []guardRef
	for i, it := range items {
		if it.Inst.Op == isa.OpVScatter {
			return nil, nil, fmt.Errorf("mmdsfi: vector scatter cannot be confined (the verifier rejects it)")
		}
		m, ok := needsGuard(it.Inst, opts)
		if ok && !exempt[i] {
			g := guardPair(m, it.DataSym)
			g[0].Labels = it.Labels
			it.Labels = nil
			guards = append(guards, guardRef{cl: len(out), access: len(out) + 2})
			out = append(out, g...)
		}
		out = append(out, it)
	}
	return out, guards, nil
}

// markExempt flags the loads that belong to cfi_guard sequences.
func markExempt(items []asm.Item) []bool {
	ex := make([]bool, len(items))
	for i := 0; i+2 < len(items); i++ {
		if isCFIGuardLoad(items[i].Inst) &&
			items[i+1].Inst.Op == isa.OpBndCL && items[i+1].Inst.Bnd == isa.BND1 &&
			items[i+2].Inst.Op == isa.OpBndCU && items[i+2].Inst.Bnd == isa.BND1 {
			ex[i] = true
		}
	}
	return ex
}

func isCFIGuardLoad(in isa.Inst) bool {
	return in.Op == isa.OpLoad && in.R1 == isa.GuardScratch &&
		!in.Mem.HasIndex() && in.Mem.Disp == 0 &&
		in.Mem.Base.Valid()
}
