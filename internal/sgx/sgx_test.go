package sgx

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/mpx"
)

func buildEnclave(t *testing.T, p *Platform, pages int) *Enclave {
	t.Helper()
	e, err := p.ECreate(0x100000, uint64(pages)*PageSize, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pages; i++ {
		perm := mem.PermRW
		if i == 0 {
			perm = mem.PermRWX
		}
		if err := e.EAdd(0x100000+uint64(i)*PageSize, []byte{byte(i)}, perm); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.EInit(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestMeasurementDeterministic(t *testing.T) {
	p := NewPlatform(64 << 20)
	e1 := buildEnclave(t, p, 4)
	e2 := buildEnclave(t, p, 4)
	if e1.Measurement() != e2.Measurement() {
		t.Fatal("identical enclaves must have identical measurements")
	}
}

func TestMeasurementSensitivity(t *testing.T) {
	p := NewPlatform(64 << 20)
	base := buildEnclave(t, p, 4)

	// Different content.
	e, _ := p.ECreate(0x100000, 4*PageSize, 2)
	for i := 0; i < 4; i++ {
		perm := mem.PermRW
		if i == 0 {
			perm = mem.PermRWX
		}
		data := []byte{byte(i)}
		if i == 2 {
			data = []byte{0xFF}
		}
		if err := e.EAdd(0x100000+uint64(i)*PageSize, data, perm); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.EInit(); err != nil {
		t.Fatal(err)
	}
	if e.Measurement() == base.Measurement() {
		t.Fatal("different page content must change the measurement")
	}

	// Different permissions.
	e2, _ := p.ECreate(0x100000, 4*PageSize, 2)
	for i := 0; i < 4; i++ {
		if err := e2.EAdd(0x100000+uint64(i)*PageSize, []byte{byte(i)}, mem.PermRWX); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e2.EInit(); err != nil {
		t.Fatal(err)
	}
	if e2.Measurement() == base.Measurement() {
		t.Fatal("different page permissions must change the measurement")
	}
}

func TestSGX1NoChangesAfterInit(t *testing.T) {
	p := NewPlatform(64 << 20)
	e := buildEnclave(t, p, 2)
	err := e.EAdd(0x100000+2*PageSize, nil, mem.PermRW)
	if err != ErrInitialized {
		t.Fatalf("EAdd after EInit: err = %v, want ErrInitialized", err)
	}
	if _, err := e.EInit(); err != ErrInitialized {
		t.Fatalf("double EInit: err = %v, want ErrInitialized", err)
	}
}

func TestEPCAccounting(t *testing.T) {
	p := NewPlatform(4 * PageSize)
	e, err := p.ECreate(0, 16*PageSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := e.EAdd(uint64(i)*PageSize, nil, mem.PermRW); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.EAdd(4*PageSize, nil, mem.PermRW); err == nil {
		t.Fatal("EPC exhaustion should be reported")
	}
	if got := p.EPCUsed(); got != 4*PageSize {
		t.Fatalf("EPCUsed = %d, want %d", got, 4*PageSize)
	}
	e.Destroy()
	if got := p.EPCUsed(); got != 0 {
		t.Fatalf("EPCUsed after destroy = %d, want 0", got)
	}
	e.Destroy() // idempotent
	if got := p.EPCUsed(); got != 0 {
		t.Fatalf("EPCUsed after double destroy = %d", got)
	}
}

func TestLocalAttestation(t *testing.T) {
	p := NewPlatform(64 << 20)
	e := buildEnclave(t, p, 2)

	var data [64]byte
	copy(data[:], "spawn-handshake-nonce")
	r, err := e.EReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.VerifyReport(r); err != nil {
		t.Fatalf("genuine report rejected: %v", err)
	}

	// Tampered data fails.
	bad := r
	bad.Data[0] ^= 1
	if err := p.VerifyReport(bad); err == nil {
		t.Fatal("tampered report accepted")
	}

	// A report MACed on another platform fails here.
	p2 := NewPlatform(64 << 20)
	// Same key derivation makes the platforms identical; perturb p2's
	// key via its own enclave with data signed under a forged MAC.
	forged := r
	forged.MAC[0] ^= 1
	if err := p2.VerifyReport(forged); err == nil {
		t.Fatal("forged MAC accepted")
	}
}

func TestReportRequiresInit(t *testing.T) {
	p := NewPlatform(64 << 20)
	e, _ := p.ECreate(0, PageSize, 1)
	if _, err := e.EReport([64]byte{}); err != ErrNotInitialized {
		t.Fatalf("EReport before EInit: %v", err)
	}
}

func TestSSASaveRestore(t *testing.T) {
	p := NewPlatform(64 << 20)
	e := buildEnclave(t, p, 2)
	ssa := e.SSAFor(1)
	ssa.Valid = true
	ssa.PC = 0x1234
	ssa.Bounds[0] = mpx.Bound{Lower: 1, Upper: 2}
	// The SSA lives in the enclave: another lookup sees the same state.
	again := e.SSAFor(1)
	if !again.Valid || again.PC != 0x1234 || again.Bounds[0] != (mpx.Bound{Lower: 1, Upper: 2}) {
		t.Fatal("SSA state not preserved")
	}
	if e.SSAFor(0).Valid {
		t.Fatal("SSA of a different thread affected")
	}
}

func TestUnalignedEAdd(t *testing.T) {
	p := NewPlatform(64 << 20)
	e, _ := p.ECreate(0, 4*PageSize, 1)
	if err := e.EAdd(100, nil, mem.PermRW); err == nil {
		t.Fatal("unaligned EADD should fail")
	}
}

func BenchmarkEnclaveCreation(b *testing.B) {
	// The real cost behind Figure 6a's Graphene-SGX columns: measuring
	// a whole enclave at creation time. 16 MiB here.
	p := NewPlatform(1 << 30)
	pages := 16 << 20 / PageSize
	content := make([]byte, PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := p.ECreate(0, uint64(pages)*PageSize, 1)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < pages; j++ {
			if err := e.EAdd(uint64(j)*PageSize, content, mem.PermRW); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := e.EInit(); err != nil {
			b.Fatal(err)
		}
		e.Destroy()
	}
}
