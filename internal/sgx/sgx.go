// Package sgx models the Intel SGX 1.0 features that the Occlum paper
// depends on: enclave creation with cryptographic measurement, the EPC
// page-permission model, asynchronous enclave exits with state save areas,
// and local attestation between enclaves on the same platform.
//
// The model keeps the *costs* of the paper's SGX real where they matter to
// the evaluation:
//
//   - Enclave creation measures every added page with SHA-256 (the EADD +
//     EEXTEND work that makes Graphene-SGX-style per-process enclaves so
//     expensive, Figure 6a).
//   - SGX 1.0 semantics: after EINIT, no page may be added, removed, or
//     have its permissions changed, which is why the Occlum LibOS
//     preallocates the pages of all MMDSFI domains up front (§6).
package sgx

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/mem"
	"repro/internal/mpx"
)

// PageSize re-exports the EPC page size.
const PageSize = mem.PageSize

// Enclave lifecycle and platform errors.
var (
	// ErrInitialized reports an SGX 1.0 restriction violation: the
	// enclave is initialized, so pages can no longer be changed.
	ErrInitialized = errors.New("sgx: enclave already initialized (SGX 1.0 forbids page changes)")
	// ErrNotInitialized reports entering an enclave before EINIT.
	ErrNotInitialized = errors.New("sgx: enclave not initialized")
	// ErrEPCExhausted reports that the platform's EPC has no room for
	// another page.
	ErrEPCExhausted = errors.New("sgx: EPC exhausted")
	// ErrBadReport reports a local-attestation report whose MAC does
	// not verify on this platform.
	ErrBadReport = errors.New("sgx: report MAC verification failed")
)

// Platform models one SGX-capable machine: it owns the EPC budget and the
// processor keys used for local attestation.
type Platform struct {
	mu      sync.Mutex
	epcCap  uint64 // bytes
	epcUsed uint64
	key     [32]byte // processor report key (never leaves the platform)
}

// NewPlatform creates a platform with the given EPC capacity in bytes.
// Real SGX 1.0 parts expose roughly 93 MiB of usable EPC out of a 128 MiB
// reservation; pass something in that range for realistic pressure.
func NewPlatform(epcBytes uint64) *Platform {
	p := &Platform{epcCap: epcBytes}
	// A fixed, platform-private key. Derived deterministically so tests
	// are reproducible; in real SGX this is fused into the processor.
	p.key = sha256.Sum256([]byte("ovm-sgx-platform-report-key"))
	return p
}

// EPCUsed returns the number of EPC bytes currently committed.
func (p *Platform) EPCUsed() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epcUsed
}

func (p *Platform) chargeEPC(n uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.epcUsed+n > p.epcCap {
		return fmt.Errorf("%w: used %d + %d > cap %d", ErrEPCExhausted, p.epcUsed, n, p.epcCap)
	}
	p.epcUsed += n
	return nil
}

func (p *Platform) releaseEPC(n uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.epcUsed -= n
}

// Measurement is the SHA-256 enclave measurement (MRENCLAVE).
type Measurement [32]byte

// SSA is the state save area of one SGX thread: the CPU state stored by
// the hardware on an asynchronous enclave exit (AEX) and restored on
// resume. Storing the MPX bound registers here is what lets MMDSFI trust
// them across exits (§2.3).
type SSA struct {
	// Valid marks that an AEX stored state here that has not yet been
	// consumed by a resume.
	Valid bool
	// PC is the interrupted program counter.
	PC uint64
	// Regs are the general-purpose registers.
	Regs [16]uint64
	// ZF and SF are the flags.
	ZF, SF bool
	// Bounds are the MPX bound registers.
	Bounds [4]mpx.Bound
}

// Enclave is one enclave instance. Its memory is a permission-checked
// paged range (the ELRANGE); the CPU protections of mem.Paged stand in for
// the EPC access control of real SGX.
type Enclave struct {
	*mem.Paged

	platform    *Platform
	measure     []byte // running measurement transcript
	measurement Measurement
	initialized bool
	pagesAdded  uint64
	ssa         []SSA // one per TCS
	destroyed   bool
}

// ECreate starts building an enclave whose ELRANGE is [base, base+size),
// with nthreads thread control structures. It corresponds to the ECREATE
// instruction. Pages are committed to the EPC lazily by EAdd.
func (p *Platform) ECreate(base, size uint64, nthreads int) (*Enclave, error) {
	if nthreads <= 0 {
		return nil, errors.New("sgx: enclave needs at least one thread")
	}
	e := &Enclave{
		Paged:    mem.NewPaged(base, size),
		platform: p,
		ssa:      make([]SSA, nthreads),
	}
	e.measure = binary.LittleEndian.AppendUint64(e.measure, size)
	return e, nil
}

// EAdd adds one page of content at vaddr with the given permission and
// extends the enclave measurement over the page content and its metadata
// (the EADD + EEXTEND pair). data may be shorter than a page; the
// remainder is zero. This is the cryptographic work that dominates enclave
// creation time.
func (e *Enclave) EAdd(vaddr uint64, data []byte, perm mem.Perm) error {
	if e.initialized {
		return ErrInitialized
	}
	if vaddr%PageSize != 0 {
		return fmt.Errorf("sgx: EADD at unaligned address %#x", vaddr)
	}
	if len(data) > PageSize {
		return fmt.Errorf("sgx: EADD data exceeds a page: %d", len(data))
	}
	if err := e.platform.chargeEPC(PageSize); err != nil {
		return err
	}
	if err := e.Map(vaddr, PageSize, perm); err != nil {
		e.platform.releaseEPC(PageSize)
		return err
	}
	if len(data) > 0 {
		if err := e.WriteDirect(vaddr, data); err != nil {
			e.platform.releaseEPC(PageSize)
			return err
		}
	}
	e.pagesAdded++

	// EEXTEND: hash the page metadata and full page content into the
	// measurement transcript.
	var meta [16]byte
	binary.LittleEndian.PutUint64(meta[0:], vaddr)
	binary.LittleEndian.PutUint64(meta[8:], uint64(perm))
	e.measure = append(e.measure, meta[:]...)
	page, err := e.ReadDirect(vaddr, PageSize)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(page)
	e.measure = append(e.measure, sum[:]...)
	return nil
}

// EInit finalizes the measurement and marks the enclave initialized. After
// EInit, EAdd fails (SGX 1.0) and the enclave may be entered.
func (e *Enclave) EInit() (Measurement, error) {
	if e.initialized {
		return e.measurement, ErrInitialized
	}
	e.measurement = sha256.Sum256(e.measure)
	e.measure = nil
	e.initialized = true
	return e.measurement, nil
}

// Initialized reports whether EInit has completed.
func (e *Enclave) Initialized() bool { return e.initialized }

// Measurement returns the enclave's MRENCLAVE. It is only meaningful after
// EInit.
func (e *Enclave) Measurement() Measurement { return e.measurement }

// PagesAdded returns the number of EPC pages committed to this enclave.
func (e *Enclave) PagesAdded() uint64 { return e.pagesAdded }

// NumThreads returns the number of thread control structures.
func (e *Enclave) NumThreads() int { return len(e.ssa) }

// SSAFor returns the state save area of thread tcs.
func (e *Enclave) SSAFor(tcs int) *SSA { return &e.ssa[tcs] }

// Destroy releases the enclave's EPC pages. Using the enclave afterwards
// is a programming error.
func (e *Enclave) Destroy() {
	if e.destroyed {
		return
	}
	e.destroyed = true
	e.platform.releaseEPC(e.pagesAdded * PageSize)
}

// Report is a local attestation report (EREPORT): the enclave measurement
// plus user data, MACed with the platform's report key so that only
// enclaves on the same platform can verify it.
type Report struct {
	Measurement Measurement
	Data        [64]byte
	MAC         [32]byte
}

// EReport produces a local attestation report binding data to this
// enclave's measurement.
func (e *Enclave) EReport(data [64]byte) (Report, error) {
	if !e.initialized {
		return Report{}, ErrNotInitialized
	}
	r := Report{Measurement: e.measurement, Data: data}
	r.MAC = e.platform.reportMAC(r)
	return r, nil
}

// VerifyReport checks a report produced by another enclave on the same
// platform.
func (p *Platform) VerifyReport(r Report) error {
	want := p.reportMAC(r)
	if !hmac.Equal(want[:], r.MAC[:]) {
		return ErrBadReport
	}
	return nil
}

func (p *Platform) reportMAC(r Report) [32]byte {
	h := hmac.New(sha256.New, p.key[:])
	h.Write(r.Measurement[:])
	h.Write(r.Data[:])
	var mac [32]byte
	h.Sum(mac[:0])
	return mac
}
