// Package asm provides the program representation and builder used by the
// Occlum toolchain: a symbolic assembly layer over internal/isa, with
// labels, data symbols and a linker that lays out MMDSFI-compatible
// binaries.
//
// Programs are built either with the Builder API (used by the workload
// generators and tests) or parsed from .oasm text (cmd/occlum-as). Both
// produce a Program of Items — instructions that still carry symbolic
// branch targets and data references. The MMDSFI instrumenter
// (internal/mmdsfi) transforms Programs; the linker resolves symbols and
// emits raw code/data images.
package asm

import (
	"fmt"

	"repro/internal/isa"
)

// Item is one instruction plus its symbolic decorations.
type Item struct {
	// Inst is the instruction. For direct branches, Inst.Label carries
	// the symbolic target until link time.
	Inst isa.Inst
	// Labels are the labels defined at this instruction.
	Labels []string
	// DataSym, when non-empty, names a data symbol; at link time the
	// instruction's memory operand becomes PC-relative with a
	// displacement reaching the symbol in the data region.
	DataSym string
}

// Program is a not-yet-linked unit: symbolic instructions plus an
// initialized data section.
type Program struct {
	// Items are the instructions in layout order.
	Items []Item
	// FuncLabels marks labels that are entered indirectly (function
	// entries, jump-table targets, return sites). The MMDSFI
	// instrumenter places a cfi_label at each.
	FuncLabels map[string]bool
	// Entry is the label where execution starts. It must be a
	// FuncLabel (the LibOS enters programs only at cfi_labels).
	Entry string
	// Data is the initialized data section.
	Data []byte
	// DataSyms maps data symbol names to offsets in Data.
	DataSyms map[string]uint32
	// BSS is the size of the zero-initialized region following Data.
	BSS uint32
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{
		FuncLabels: make(map[string]bool),
		DataSyms:   make(map[string]uint32),
	}
}

// LabelIndex returns a map from label name to the index of the item that
// defines it, or an error for duplicate definitions.
func (p *Program) LabelIndex() (map[string]int, error) {
	idx := make(map[string]int)
	for i, it := range p.Items {
		for _, l := range it.Labels {
			if _, dup := idx[l]; dup {
				return nil, fmt.Errorf("asm: duplicate label %q", l)
			}
			idx[l] = i
		}
	}
	return idx, nil
}

// Builder incrementally constructs a Program. Methods record the first
// error encountered; Finish reports it.
type Builder struct {
	p   *Program
	err error
	// pending are labels waiting to attach to the next instruction.
	pending []string
	uniq    int
}

// Uniq returns a fresh label name with the given prefix, for helper
// libraries that emit internal control flow.
func (b *Builder) Uniq(prefix string) string {
	b.uniq++
	return fmt.Sprintf("%s$%d", prefix, b.uniq)
}

// NewBuilder returns a Builder over a fresh Program.
func NewBuilder() *Builder {
	return &Builder{p: NewProgram()}
}

// Finish returns the built program, or the first recorded error. It also
// verifies that all referenced labels and data symbols are defined.
func (b *Builder) Finish() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.pending) > 0 {
		return nil, fmt.Errorf("asm: trailing labels %v not attached to an instruction", b.pending)
	}
	idx, err := b.p.LabelIndex()
	if err != nil {
		return nil, err
	}
	for _, it := range b.p.Items {
		if it.Inst.Label != "" {
			if _, ok := idx[it.Inst.Label]; !ok {
				return nil, fmt.Errorf("asm: undefined label %q", it.Inst.Label)
			}
		}
		if it.DataSym != "" {
			if _, ok := b.p.DataSyms[it.DataSym]; !ok {
				return nil, fmt.Errorf("asm: undefined data symbol %q", it.DataSym)
			}
		}
	}
	if b.p.Entry == "" {
		return nil, fmt.Errorf("asm: program has no entry point")
	}
	if _, ok := idx[b.p.Entry]; !ok {
		return nil, fmt.Errorf("asm: entry label %q undefined", b.p.Entry)
	}
	return b.p, nil
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("asm: "+format, args...)
	}
}

// emit appends an instruction, attaching pending labels.
func (b *Builder) emit(it Item) {
	it.Labels = append(it.Labels, b.pending...)
	b.pending = nil
	b.p.Items = append(b.p.Items, it)
}

// I appends a raw instruction.
func (b *Builder) I(in isa.Inst) *Builder {
	b.emit(Item{Inst: in})
	return b
}

// Label defines a local label (a direct-branch target) at the next
// instruction.
func (b *Builder) Label(name string) *Builder {
	b.pending = append(b.pending, name)
	return b
}

// Func defines a function entry: a label that may be reached indirectly.
// The MMDSFI instrumenter will place a cfi_label here.
func (b *Builder) Func(name string) *Builder {
	b.p.FuncLabels[name] = true
	return b.Label(name)
}

// Entry defines the program entry function.
func (b *Builder) Entry(name string) *Builder {
	if b.p.Entry != "" {
		b.fail("duplicate entry point %q", name)
		return b
	}
	b.p.Entry = name
	return b.Func(name)
}

// DeclareFunc marks name as an indirect-entry label without defining it;
// the label itself must appear separately (used by the text assembler,
// where "name:" is written explicitly).
func (b *Builder) DeclareFunc(name string) *Builder {
	b.p.FuncLabels[name] = true
	return b
}

// DeclareEntry sets the entry point without defining the label.
func (b *Builder) DeclareEntry(name string) *Builder {
	if b.p.Entry != "" {
		b.fail("duplicate entry point %q", name)
		return b
	}
	b.p.Entry = name
	return b.DeclareFunc(name)
}

// Bytes defines an initialized data symbol with the given content.
func (b *Builder) Bytes(sym string, data []byte) *Builder {
	if _, dup := b.p.DataSyms[sym]; dup {
		b.fail("duplicate data symbol %q", sym)
		return b
	}
	// Align symbols to 8 bytes so 64-bit loads of symbol words are
	// naturally aligned.
	for len(b.p.Data)%8 != 0 {
		b.p.Data = append(b.p.Data, 0)
	}
	b.p.DataSyms[sym] = uint32(len(b.p.Data))
	b.p.Data = append(b.p.Data, data...)
	return b
}

// Zero defines a zero-initialized data symbol of n bytes (allocated in the
// initialized data section for addressing simplicity).
func (b *Builder) Zero(sym string, n int) *Builder {
	return b.Bytes(sym, make([]byte, n))
}

// String defines a NUL-terminated string symbol.
func (b *Builder) String(sym, s string) *Builder {
	return b.Bytes(sym, append([]byte(s), 0))
}

// ReserveBSS adds n bytes to the zero-initialized tail of the data region.
func (b *Builder) ReserveBSS(n uint32) *Builder {
	b.p.BSS += n
	return b
}

// --- Instruction helpers -------------------------------------------------

// MovRI emits movri dst, imm64.
func (b *Builder) MovRI(dst isa.Reg, imm int64) *Builder {
	return b.I(isa.Inst{Op: isa.OpMovRI, R1: dst, Imm: imm})
}

// MovRR emits mov dst, src.
func (b *Builder) MovRR(dst, src isa.Reg) *Builder {
	return b.I(isa.Inst{Op: isa.OpMovRR, R1: dst, R2: src})
}

// Load emits load dst, mem (64-bit).
func (b *Builder) Load(dst isa.Reg, m isa.MemRef) *Builder {
	return b.I(isa.Inst{Op: isa.OpLoad, R1: dst, Mem: m})
}

// LoadB emits loadb dst, mem (8-bit, zero-extended).
func (b *Builder) LoadB(dst isa.Reg, m isa.MemRef) *Builder {
	return b.I(isa.Inst{Op: isa.OpLoadB, R1: dst, Mem: m})
}

// Store emits store mem, src (64-bit).
func (b *Builder) Store(m isa.MemRef, src isa.Reg) *Builder {
	return b.I(isa.Inst{Op: isa.OpStore, R1: src, Mem: m})
}

// StoreB emits storeb mem, src (low byte).
func (b *Builder) StoreB(m isa.MemRef, src isa.Reg) *Builder {
	return b.I(isa.Inst{Op: isa.OpStoreB, R1: src, Mem: m})
}

// Lea emits lea dst, mem.
func (b *Builder) Lea(dst isa.Reg, m isa.MemRef) *Builder {
	return b.I(isa.Inst{Op: isa.OpLea, R1: dst, Mem: m})
}

// LeaData emits lea dst, <sym>: the address of a data symbol, resolved at
// link time into a PC-relative operand.
func (b *Builder) LeaData(dst isa.Reg, sym string) *Builder {
	b.emit(Item{Inst: isa.Inst{Op: isa.OpLea, R1: dst, Mem: isa.MemPC(0)}, DataSym: sym})
	return b
}

// LoadData emits load dst, <sym> from a data symbol.
func (b *Builder) LoadData(dst isa.Reg, sym string) *Builder {
	b.emit(Item{Inst: isa.Inst{Op: isa.OpLoad, R1: dst, Mem: isa.MemPC(0)}, DataSym: sym})
	return b
}

// StoreData emits store <sym>, src to a data symbol.
func (b *Builder) StoreData(sym string, src isa.Reg) *Builder {
	b.emit(Item{Inst: isa.Inst{Op: isa.OpStore, R1: src, Mem: isa.MemPC(0)}, DataSym: sym})
	return b
}

// Push emits push src.
func (b *Builder) Push(src isa.Reg) *Builder { return b.I(isa.Inst{Op: isa.OpPush, R1: src}) }

// Pop emits pop dst.
func (b *Builder) Pop(dst isa.Reg) *Builder { return b.I(isa.Inst{Op: isa.OpPop, R1: dst}) }

// Alu emits a register-register ALU instruction.
func (b *Builder) Alu(op isa.Op, dst, src isa.Reg) *Builder {
	return b.I(isa.Inst{Op: op, R1: dst, R2: src})
}

// AluI emits a register-immediate ALU instruction.
func (b *Builder) AluI(op isa.Op, dst isa.Reg, imm int32) *Builder {
	return b.I(isa.Inst{Op: op, R1: dst, Imm: int64(imm)})
}

// Add emits add dst, src.
func (b *Builder) Add(dst, src isa.Reg) *Builder { return b.Alu(isa.OpAddRR, dst, src) }

// AddI emits add dst, imm.
func (b *Builder) AddI(dst isa.Reg, imm int32) *Builder { return b.AluI(isa.OpAddRI, dst, imm) }

// Sub emits sub dst, src.
func (b *Builder) Sub(dst, src isa.Reg) *Builder { return b.Alu(isa.OpSubRR, dst, src) }

// SubI emits sub dst, imm.
func (b *Builder) SubI(dst isa.Reg, imm int32) *Builder { return b.AluI(isa.OpSubRI, dst, imm) }

// Mul emits mul dst, src.
func (b *Builder) Mul(dst, src isa.Reg) *Builder { return b.Alu(isa.OpMulRR, dst, src) }

// MulI emits mul dst, imm.
func (b *Builder) MulI(dst isa.Reg, imm int32) *Builder { return b.AluI(isa.OpMulRI, dst, imm) }

// Div emits div dst, src (signed).
func (b *Builder) Div(dst, src isa.Reg) *Builder { return b.Alu(isa.OpDivRR, dst, src) }

// Mod emits mod dst, src (signed).
func (b *Builder) Mod(dst, src isa.Reg) *Builder { return b.Alu(isa.OpModRR, dst, src) }

// And emits and dst, src.
func (b *Builder) And(dst, src isa.Reg) *Builder { return b.Alu(isa.OpAndRR, dst, src) }

// AndI emits and dst, imm.
func (b *Builder) AndI(dst isa.Reg, imm int32) *Builder { return b.AluI(isa.OpAndRI, dst, imm) }

// Or emits or dst, src.
func (b *Builder) Or(dst, src isa.Reg) *Builder { return b.Alu(isa.OpOrRR, dst, src) }

// Xor emits xor dst, src.
func (b *Builder) Xor(dst, src isa.Reg) *Builder { return b.Alu(isa.OpXorRR, dst, src) }

// XorI emits xor dst, imm.
func (b *Builder) XorI(dst isa.Reg, imm int32) *Builder { return b.AluI(isa.OpXorRI, dst, imm) }

// ShlI emits shl dst, imm.
func (b *Builder) ShlI(dst isa.Reg, imm int32) *Builder { return b.AluI(isa.OpShlRI, dst, imm) }

// ShrI emits shr dst, imm.
func (b *Builder) ShrI(dst isa.Reg, imm int32) *Builder { return b.AluI(isa.OpShrRI, dst, imm) }

// Cmp emits cmp a, b.
func (b *Builder) Cmp(a, r isa.Reg) *Builder { return b.Alu(isa.OpCmpRR, a, r) }

// CmpI emits cmp a, imm.
func (b *Builder) CmpI(a isa.Reg, imm int32) *Builder { return b.AluI(isa.OpCmpRI, a, imm) }

// Test emits test a, b.
func (b *Builder) Test(a, r isa.Reg) *Builder { return b.Alu(isa.OpTestRR, a, r) }

// Jmp emits jmp label.
func (b *Builder) Jmp(label string) *Builder {
	return b.I(isa.Inst{Op: isa.OpJmp, Label: label})
}

// Jcc emits a conditional branch to label.
func (b *Builder) Jcc(op isa.Op, label string) *Builder {
	if !op.IsCondBranch() {
		b.fail("%s is not a conditional branch", op)
		return b
	}
	return b.I(isa.Inst{Op: op, Label: label})
}

// Je emits je label.
func (b *Builder) Je(label string) *Builder { return b.Jcc(isa.OpJe, label) }

// Jne emits jne label.
func (b *Builder) Jne(label string) *Builder { return b.Jcc(isa.OpJne, label) }

// Jl emits jl label.
func (b *Builder) Jl(label string) *Builder { return b.Jcc(isa.OpJl, label) }

// Jle emits jle label.
func (b *Builder) Jle(label string) *Builder { return b.Jcc(isa.OpJle, label) }

// Jg emits jg label.
func (b *Builder) Jg(label string) *Builder { return b.Jcc(isa.OpJg, label) }

// Jge emits jge label.
func (b *Builder) Jge(label string) *Builder { return b.Jcc(isa.OpJge, label) }

// Jb emits jb label.
func (b *Builder) Jb(label string) *Builder { return b.Jcc(isa.OpJb, label) }

// Jae emits jae label.
func (b *Builder) Jae(label string) *Builder { return b.Jcc(isa.OpJae, label) }

// Call emits call label (direct).
func (b *Builder) Call(label string) *Builder {
	b.p.FuncLabels[label] = true
	return b.I(isa.Inst{Op: isa.OpCall, Label: label})
}

// CallR emits callr reg (register-indirect).
func (b *Builder) CallR(r isa.Reg) *Builder { return b.I(isa.Inst{Op: isa.OpCallR, R1: r}) }

// JmpR emits jmpr reg (register-indirect).
func (b *Builder) JmpR(r isa.Reg) *Builder { return b.I(isa.Inst{Op: isa.OpJmpR, R1: r}) }

// Ret emits ret. The MMDSFI instrumenter rewrites it into
// pop+cfi_guard+jmpr; uninstrumented binaries keep the raw ret (and are
// rejected by the verifier, as in the paper).
func (b *Builder) Ret() *Builder { return b.I(isa.Inst{Op: isa.OpRet}) }

// Trap emits the LibOS syscall gate instruction. User programs must not
// emit it (the verifier rejects it); it is used by loaders and tests.
func (b *Builder) Trap() *Builder { return b.I(isa.Inst{Op: isa.OpTrap}) }

// Nop emits nop.
func (b *Builder) Nop() *Builder { return b.I(isa.Inst{Op: isa.OpNop}) }
