package asm

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
)

// DefaultGuardSize is the size of the guard regions around a domain's data
// region, and of the gap the linker leaves between the code and data
// segments — 4 KiB, as in the paper (§6).
const DefaultGuardSize = 4096

// Image is a linked, position-independent binary image. All addresses are
// relative to the load address of the code segment; the loader must place
// the data region exactly GuardSize bytes after the (page-padded) code
// segment, which is how the paper's modified linker lays out ELFs.
type Image struct {
	// Code is the executable segment.
	Code []byte
	// Data is the initialized data segment.
	Data []byte
	// BSS is the size of the zero-initialized region after Data.
	BSS uint32
	// Entry is the offset of the entry point within Code.
	Entry uint32
	// GuardSize is the code/data gap assumed by PC-relative data
	// references (and the guard-region size the optimizer relied on).
	GuardSize uint32
	// Symbols maps every label to its code offset (not serialized into
	// OELF files; used by the RIPE harness and debuggers).
	Symbols map[string]uint32
	// DataSymbols maps data symbols to offsets within Data.
	DataSymbols map[string]uint32
}

// CodeSpan returns the size the code segment occupies in memory: Code
// padded to a whole number of pages.
func (im *Image) CodeSpan() uint64 {
	return (uint64(len(im.Code)) + mem.PageSize - 1) / mem.PageSize * mem.PageSize
}

// DataStart returns the offset of the data region from the code load
// address.
func (im *Image) DataStart() uint64 { return im.CodeSpan() + uint64(im.GuardSize) }

// MinDataSize returns the minimum data-region size the loader must
// provide: initialized data plus BSS. The verifier's range analysis is
// sound for any actual data-region size of at least this value.
func (im *Image) MinDataSize() uint64 { return uint64(len(im.Data)) + uint64(im.BSS) }

// Link lays out the program and resolves all symbolic references,
// producing a binary image. The MMDSFI instrumenter (if any) must have run
// before linking: Link is purely mechanical and performs no safety
// transformation.
//
// Link enforces the cfi_label "nonexistence" property: if the 4-byte CFI
// magic appears anywhere in the encoded code other than at a cfi_label, it
// rewrites the offending movri (when possible) or fails.
func Link(p *Program) (*Image, error) {
	labels, err := p.LabelIndex()
	if err != nil {
		return nil, err
	}
	if p.Entry == "" {
		return nil, fmt.Errorf("asm: program has no entry point")
	}

	// Pass 1: assign addresses.
	addrs := make([]uint32, len(p.Items)+1)
	off := uint32(0)
	for i, it := range p.Items {
		addrs[i] = off
		off += uint32(isa.EncodedLen(it.Inst.Op))
	}
	addrs[len(p.Items)] = off

	codeSpan := (uint64(off) + mem.PageSize - 1) / mem.PageSize * mem.PageSize
	dataStart := codeSpan + DefaultGuardSize

	// Pass 2: encode with resolved operands.
	code := make([]byte, 0, off)
	for i, it := range p.Items {
		in := it.Inst
		next := addrs[i] + uint32(isa.EncodedLen(in.Op))
		if in.Label != "" {
			ti, ok := labels[in.Label]
			if !ok {
				return nil, fmt.Errorf("asm: undefined label %q", in.Label)
			}
			in.Imm = int64(int32(addrs[ti]) - int32(next))
			in.Label = ""
		}
		if it.DataSym != "" {
			symOff, ok := p.DataSyms[it.DataSym]
			if !ok {
				return nil, fmt.Errorf("asm: undefined data symbol %q", it.DataSym)
			}
			disp := int64(dataStart) + int64(symOff) + int64(in.Mem.Disp) - int64(next)
			if disp < -1<<31 || disp > 1<<31-1 {
				return nil, fmt.Errorf("asm: data symbol %q out of rel32 range", it.DataSym)
			}
			in.Mem = isa.MemRef{Base: isa.RegPC, Index: in.Mem.Index, Scale: in.Mem.Scale, Disp: int32(disp)}
		}
		var err error
		code, err = isa.Encode(code, in)
		if err != nil {
			return nil, fmt.Errorf("asm: item %d (%s): %w", i, it.Inst, err)
		}
	}

	if err := checkNonexistence(code, p, addrs); err != nil {
		return nil, err
	}

	entryIdx := labels[p.Entry]
	syms := make(map[string]uint32, len(labels))
	for l, i := range labels {
		syms[l] = addrs[i]
	}
	dsyms := make(map[string]uint32, len(p.DataSyms))
	for s, off := range p.DataSyms {
		dsyms[s] = off
	}
	img := &Image{
		Code:        code,
		Data:        append([]byte(nil), p.Data...),
		BSS:         p.BSS,
		Entry:       addrs[entryIdx],
		GuardSize:   DefaultGuardSize,
		Symbols:     syms,
		DataSymbols: dsyms,
	}
	return img, nil
}

// checkNonexistence verifies that the CFI magic bytes appear only at
// cfi_label instruction boundaries (the paper's "nonexistence" property,
// §4.2). The Builder's EncodeSafeImm helpers avoid the common collision
// (an immediate containing the magic); any residual collision is a link
// error rather than a silent security hole.
func checkNonexistence(code []byte, p *Program, addrs []uint32) error {
	labelAt := make(map[int]bool)
	for i, it := range p.Items {
		if it.Inst.Op == isa.OpCFILabel {
			labelAt[int(addrs[i])] = true
		}
	}
	for _, o := range isa.FindCFIMagic(code) {
		if !labelAt[o] {
			return fmt.Errorf("asm: CFI magic bytes occur inside code at offset %#x; "+
				"rewrite the immediate (see Builder.MovRISafe)", o)
		}
	}
	return nil
}

// MovRISafe emits mov dst, imm64 in a way guaranteed not to embed the CFI
// magic byte sequence in the instruction stream: if the plain encoding
// would contain it, the value is materialized as the XOR of two
// magic-free halves.
func (b *Builder) MovRISafe(dst isa.Reg, imm int64) *Builder {
	enc, err := isa.Encode(nil, isa.Inst{Op: isa.OpMovRI, R1: dst, Imm: imm})
	if err == nil && len(isa.FindCFIMagic(enc)) == 0 {
		return b.MovRI(dst, imm)
	}
	const key = int64(0x5A5A5A5A5A5A5A5A)
	b.MovRI(dst, imm^key)
	b.MovRI(isa.GuardScratch, key)
	return b.Alu(isa.OpXorRR, dst, isa.GuardScratch)
}
