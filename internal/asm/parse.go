package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Parse assembles OVM assembly text into a Program. The syntax:
//
//	.entry _start            ; declare the entry function
//	.func name               ; declare an indirect-entry label
//	.string sym "text"       ; NUL-terminated string data
//	.bytes sym n             ; n zero bytes of data
//	.bss n                   ; extend the zero tail
//
//	label:                   ; local label
//	mov r1, r2               ; register-register
//	movri r1, 42             ; register-immediate
//	load r1, [r2+8]          ; memory operands: [base], [base+disp],
//	store [r2+r3*8-4], r1    ;   [base+index*scale+disp]
//	lea r1, sym              ; data-symbol reference
//	jmp label                ; direct branches take labels
//	call fn / callr r1 / ret
//	trap / nop
//
// Comments run from ';' or '#' to end of line. Mnemonics follow the Op
// names of internal/isa.
func Parse(src string) (*Program, error) {
	b := NewBuilder()
	for lineno, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := parseLine(b, line); err != nil {
			return nil, fmt.Errorf("asm: line %d: %w", lineno+1, err)
		}
	}
	return b.Finish()
}

func parseLine(b *Builder, line string) error {
	// Directives.
	if strings.HasPrefix(line, ".") {
		return parseDirective(b, line)
	}
	// Labels (possibly followed by an instruction).
	for {
		i := strings.Index(line, ":")
		if i < 0 || strings.ContainsAny(line[:i], " \t,[") {
			break
		}
		b.Label(strings.TrimSpace(line[:i]))
		line = strings.TrimSpace(line[i+1:])
		if line == "" {
			return nil
		}
	}
	return parseInst(b, line)
}

func parseDirective(b *Builder, line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case ".entry":
		if len(fields) != 2 {
			return fmt.Errorf(".entry needs a label")
		}
		b.DeclareEntry(fields[1])
		return nil
	case ".func":
		if len(fields) != 2 {
			return fmt.Errorf(".func needs a label")
		}
		b.DeclareFunc(fields[1])
		return nil
	case ".string":
		rest := strings.TrimSpace(strings.TrimPrefix(line, ".string"))
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return fmt.Errorf(".string needs a symbol and a quoted value")
		}
		sym := rest[:sp]
		val, err := strconv.Unquote(strings.TrimSpace(rest[sp:]))
		if err != nil {
			return fmt.Errorf(".string value: %v", err)
		}
		b.String(sym, val)
		return nil
	case ".bytes":
		if len(fields) != 3 {
			return fmt.Errorf(".bytes needs a symbol and a size")
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil || n < 0 {
			return fmt.Errorf(".bytes size: %q", fields[2])
		}
		b.Zero(fields[1], n)
		return nil
	case ".bss":
		if len(fields) != 2 {
			return fmt.Errorf(".bss needs a size")
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			return fmt.Errorf(".bss size: %q", fields[1])
		}
		b.ReserveBSS(uint32(n))
		return nil
	}
	return fmt.Errorf("unknown directive %s", fields[0])
}

// mnemonic table: built from the ISA's op names.
var mnemonics = func() map[string]isa.Op {
	m := make(map[string]isa.Op)
	for op := isa.Op(1); int(op) < isa.NumOps; op++ {
		m[op.String()] = op
	}
	return m
}()

func parseInst(b *Builder, line string) error {
	sp := strings.IndexAny(line, " \t")
	mn, rest := line, ""
	if sp >= 0 {
		mn, rest = line[:sp], strings.TrimSpace(line[sp+1:])
	}
	op, ok := mnemonics[strings.ToLower(mn)]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mn)
	}
	var args []string
	if rest != "" {
		for _, a := range strings.Split(rest, ",") {
			args = append(args, strings.TrimSpace(a))
		}
	}
	in := isa.Inst{Op: op}
	var dataSym string

	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s needs %d operands, got %d", mn, n, len(args))
		}
		return nil
	}

	switch op.Format() {
	case isa.FNone:
		if err := need(0); err != nil {
			return err
		}
	case isa.FR:
		if err := need(1); err != nil {
			return err
		}
		r, err := parseReg(args[0])
		if err != nil {
			return err
		}
		in.R1 = r
	case isa.FRR:
		if err := need(2); err != nil {
			return err
		}
		r1, err := parseReg(args[0])
		if err != nil {
			return err
		}
		r2, err := parseReg(args[1])
		if err != nil {
			return err
		}
		in.R1, in.R2 = r1, r2
	case isa.FRI64, isa.FRI32:
		if err := need(2); err != nil {
			return err
		}
		r, err := parseReg(args[0])
		if err != nil {
			return err
		}
		imm, err := strconv.ParseInt(args[1], 0, 64)
		if err != nil {
			return fmt.Errorf("immediate %q: %v", args[1], err)
		}
		in.R1, in.Imm = r, imm
	case isa.FI32, isa.FI16:
		if err := need(1); err != nil {
			return err
		}
		imm, err := strconv.ParseInt(args[0], 0, 64)
		if err != nil {
			return fmt.Errorf("immediate %q: %v", args[0], err)
		}
		in.Imm = imm
	case isa.FRel32:
		if err := need(1); err != nil {
			return err
		}
		in.Label = args[0]
	case isa.FRMem:
		if op == isa.OpJmpM || op == isa.OpCallM {
			if err := need(1); err != nil {
				return err
			}
			m, sym, err := parseMem(args[0])
			if err != nil {
				return err
			}
			in.Mem, dataSym = m, sym
			break
		}
		if err := need(2); err != nil {
			return err
		}
		r, err := parseReg(args[0])
		if err != nil {
			return err
		}
		m, sym, err := parseMem(args[1])
		if err != nil {
			return err
		}
		in.R1, in.Mem, dataSym = r, m, sym
	case isa.FMemR:
		if err := need(2); err != nil {
			return err
		}
		m, sym, err := parseMem(args[0])
		if err != nil {
			return err
		}
		r, err := parseReg(args[1])
		if err != nil {
			return err
		}
		in.R1, in.Mem, dataSym = r, m, sym
	case isa.FBR:
		if err := need(2); err != nil {
			return err
		}
		bnd, err := parseBnd(args[0])
		if err != nil {
			return err
		}
		r, err := parseReg(args[1])
		if err != nil {
			return err
		}
		in.Bnd, in.R1 = bnd, r
	case isa.FBMem:
		if err := need(2); err != nil {
			return err
		}
		bnd, err := parseBnd(args[0])
		if err != nil {
			return err
		}
		m, sym, err := parseMem(args[1])
		if err != nil {
			return err
		}
		in.Bnd, in.Mem, dataSym = bnd, m, sym
	case isa.FBB:
		if err := need(2); err != nil {
			return err
		}
		b1, err := parseBnd(args[0])
		if err != nil {
			return err
		}
		b2, err := parseBnd(args[1])
		if err != nil {
			return err
		}
		in.Bnd, in.Bnd2 = b1, b2
	case isa.FCFI:
		if err := need(0); err != nil {
			return err
		}
	}
	if op == isa.OpCall {
		b.Call(in.Label)
		return nil
	}
	b.emit(Item{Inst: in, DataSym: dataSym})
	return nil
}

func parseReg(s string) (isa.Reg, error) {
	s = strings.ToLower(s)
	if s == "sp" {
		return isa.SP, nil
	}
	if strings.HasPrefix(s, "r") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < isa.NumRegs {
			return isa.Reg(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseBnd(s string) (isa.BndReg, error) {
	s = strings.ToLower(s)
	if strings.HasPrefix(s, "bnd") {
		n, err := strconv.Atoi(s[3:])
		if err == nil && n >= 0 && n < isa.NumBndRegs {
			return isa.BndReg(n), nil
		}
	}
	return 0, fmt.Errorf("bad bound register %q", s)
}

// parseMem parses [base], [base+disp], [base+index*scale+disp], [pc+disp],
// or a bare data-symbol name (resolved PC-relative at link time).
func parseMem(s string) (isa.MemRef, string, error) {
	if !strings.HasPrefix(s, "[") {
		// Data-symbol reference.
		if s == "" || strings.ContainsAny(s, " \t[]") {
			return isa.MemRef{}, "", fmt.Errorf("bad memory operand %q", s)
		}
		return isa.MemPC(0), s, nil
	}
	if !strings.HasSuffix(s, "]") {
		return isa.MemRef{}, "", fmt.Errorf("unterminated memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	m := isa.MemRef{Base: isa.RegNone, Index: isa.RegNone, Scale: 1}
	// Split on +/- while keeping signs for the displacement.
	terms := splitTerms(inner)
	for _, t := range terms {
		body := strings.TrimSpace(strings.TrimLeft(t, "+-"))
		neg := strings.HasPrefix(strings.TrimSpace(t), "-")
		switch {
		case body == "pc":
			m.Base = isa.RegPC
		case strings.Contains(body, "*"):
			parts := strings.SplitN(body, "*", 2)
			r, err := parseReg(strings.TrimSpace(parts[0]))
			if err != nil {
				return m, "", err
			}
			sc, err := strconv.Atoi(strings.TrimSpace(parts[1]))
			if err != nil {
				return m, "", fmt.Errorf("bad scale in %q", t)
			}
			m.Index, m.Scale = r, uint8(sc)
		default:
			if r, err := parseReg(body); err == nil {
				if m.Base == isa.RegNone {
					m.Base = r
				} else if m.Index == isa.RegNone {
					m.Index, m.Scale = r, 1
				} else {
					return m, "", fmt.Errorf("too many registers in %q", s)
				}
				break
			}
			v, err := strconv.ParseInt(body, 0, 32)
			if err != nil {
				return m, "", fmt.Errorf("bad term %q", t)
			}
			if neg {
				v = -v
			}
			m.Disp += int32(v)
		}
	}
	return m, "", nil
}

func splitTerms(s string) []string {
	var out []string
	start := 0
	for i := 1; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			out = append(out, s[start:i])
			start = i
		}
	}
	out = append(out, s[start:])
	return out
}
