package asm

import (
	"testing"

	"repro/internal/isa"
)

const sampleAsm = `
; a small complete program
.string msg "hello"
.bytes buf 64
.bss 128
.entry _start

_start:
    movri r1, 10
    mov r2, r1
loop:
    subi r1, 1
    cmpi r1, 0
    jg loop
    lea r3, buf          ; data symbol
    store [r3+8], r2
    load r4, [r3+r2*8-8]
    call helper
    trap

.func helper
helper:
    addi r2, 1
    ret
`

func TestParseProgram(t *testing.T) {
	p, err := Parse(sampleAsm)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != "_start" {
		t.Fatalf("entry = %q", p.Entry)
	}
	if !p.FuncLabels["helper"] || !p.FuncLabels["_start"] {
		t.Fatalf("func labels = %v", p.FuncLabels)
	}
	if p.BSS != 128 {
		t.Fatalf("bss = %d", p.BSS)
	}
	if _, ok := p.DataSyms["msg"]; !ok {
		t.Fatal("msg symbol missing")
	}
	img, err := Link(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Code) == 0 {
		t.Fatal("no code")
	}
	// Spot-check a decoded instruction: first is movri r1, 10.
	in, _, err := isa.Decode(img.Code, 0)
	if err != nil || in.Op != isa.OpMovRI || in.R1 != isa.R1 || in.Imm != 10 {
		t.Fatalf("first inst = %v, %v", in, err)
	}
}

func TestParseMemOperands(t *testing.T) {
	cases := []struct {
		src  string
		want isa.MemRef
	}{
		{"load r1, [r2]", isa.Mem(isa.R2, 0)},
		{"load r1, [r2+16]", isa.Mem(isa.R2, 16)},
		{"load r1, [r2-8]", isa.Mem(isa.R2, -8)},
		{"load r1, [r2+r3*4+32]", isa.MemSIB(isa.R2, isa.R3, 4, 32)},
		{"load r1, [pc+100]", isa.MemPC(100)},
		{"load r1, [sp-8]", isa.Mem(isa.SP, -8)},
	}
	for _, c := range cases {
		p, err := Parse(".entry _start\n_start:\n" + c.src + "\ntrap\n")
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		// Items: the load is item 0.
		got := p.Items[0].Inst.Mem
		if got != c.want {
			t.Errorf("%s: mem = %+v, want %+v", c.src, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"bogus r1, r2",
		".entry",
		"movri r99, 1\n.entry _start\n_start: trap",
		"load r1, [r2+r3+r4]\n.entry _start\n_start: trap",
		".string msg unquoted\n.entry _start\n_start: trap",
		"jmp\n.entry _start\n_start: trap",
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) should fail", c)
		}
	}
}

func TestParsedProgramRoundTripsThroughBuilder(t *testing.T) {
	// The same program written via the Builder and via text must link
	// to identical code.
	b := NewBuilder()
	b.Entry("_start")
	b.MovRI(isa.R1, 5)
	b.AddI(isa.R1, 2)
	b.I(isa.Inst{Op: isa.OpTrap})
	pb, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	ib, err := Link(pb)
	if err != nil {
		t.Fatal(err)
	}

	pt, err := Parse(".entry _start\n_start:\nmovri r1, 5\naddi r1, 2\ntrap\n")
	if err != nil {
		t.Fatal(err)
	}
	it, err := Link(pt)
	if err != nil {
		t.Fatal(err)
	}
	if string(ib.Code) != string(it.Code) {
		t.Fatal("builder and parser produced different code")
	}
}
