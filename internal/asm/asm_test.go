package asm

import (
	"testing"

	"repro/internal/isa"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder()
	b.Entry("_start")
	b.MovRI(isa.R1, 10)
	b.Label("loop")
	b.SubI(isa.R1, 1)
	b.CmpI(isa.R1, 0)
	b.Jne("loop")
	b.Trap()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Items) != 5 {
		t.Fatalf("items = %d, want 5", len(p.Items))
	}
	if !p.FuncLabels["_start"] {
		t.Fatal("entry should be a func label")
	}
	idx, err := p.LabelIndex()
	if err != nil {
		t.Fatal(err)
	}
	if idx["loop"] != 1 {
		t.Fatalf("label loop at %d, want 1", idx["loop"])
	}
}

func TestBuilderErrors(t *testing.T) {
	// Undefined branch target.
	b := NewBuilder()
	b.Entry("_start")
	b.Jmp("nowhere")
	if _, err := b.Finish(); err == nil {
		t.Fatal("undefined label should fail")
	}

	// Missing entry.
	b = NewBuilder()
	b.Nop()
	if _, err := b.Finish(); err == nil {
		t.Fatal("missing entry should fail")
	}

	// Trailing label.
	b = NewBuilder()
	b.Entry("_start")
	b.Nop()
	b.Label("tail")
	if _, err := b.Finish(); err == nil {
		t.Fatal("trailing label should fail")
	}

	// Duplicate label.
	b = NewBuilder()
	b.Entry("_start")
	b.Label("x").Nop()
	b.Label("x").Nop()
	if _, err := b.Finish(); err == nil {
		t.Fatal("duplicate label should fail")
	}

	// Undefined data symbol.
	b = NewBuilder()
	b.Entry("_start")
	b.LeaData(isa.R1, "ghost")
	if _, err := b.Finish(); err == nil {
		t.Fatal("undefined data symbol should fail")
	}
}

func TestLinkResolvesBranches(t *testing.T) {
	b := NewBuilder()
	b.Entry("_start")
	b.Jmp("end") // skips the movri
	b.MovRI(isa.R1, 99)
	b.Label("end")
	b.Trap()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	img, err := Link(p)
	if err != nil {
		t.Fatal(err)
	}
	// Decode the jmp and check the displacement skips the 10-byte movri.
	in, n, err := isa.Decode(img.Code, 0)
	if err != nil || in.Op != isa.OpJmp {
		t.Fatalf("first inst = %v, %v", in, err)
	}
	if in.Imm != 10 {
		t.Fatalf("jmp disp = %d, want 10", in.Imm)
	}
	_ = n
	if img.Entry != 0 {
		t.Fatalf("entry = %d, want 0", img.Entry)
	}
}

func TestLinkDataSymbols(t *testing.T) {
	b := NewBuilder()
	b.String("greeting", "hi")
	b.Bytes("word", []byte{1, 2, 3, 4, 5, 6, 7, 8})
	b.Entry("_start")
	b.LeaData(isa.R1, "word")
	b.Trap()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	img, err := Link(p)
	if err != nil {
		t.Fatal(err)
	}
	in, n, err := isa.Decode(img.Code, 0)
	if err != nil || in.Op != isa.OpLea {
		t.Fatalf("first inst = %v, %v", in, err)
	}
	if !in.Mem.IsPCRel() {
		t.Fatalf("data ref not PC-relative: %v", in.Mem)
	}
	// Effective address = next-inst offset + disp must equal
	// DataStart + symbol offset.
	got := uint64(n) + uint64(int64(in.Mem.Disp))
	want := img.DataStart() + uint64(p.DataSyms["word"])
	if got != want {
		t.Fatalf("resolved address %#x, want %#x", got, want)
	}
	if p.DataSyms["word"] != 8 {
		t.Fatalf("word at offset %d, want 8 (aligned after 3-byte string)", p.DataSyms["word"])
	}
}

func TestImageGeometry(t *testing.T) {
	b := NewBuilder()
	b.Entry("_start")
	b.Trap()
	b.ReserveBSS(1000)
	b.Bytes("d", make([]byte, 24))
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	img, err := Link(p)
	if err != nil {
		t.Fatal(err)
	}
	if img.CodeSpan()%4096 != 0 || img.CodeSpan() < uint64(len(img.Code)) {
		t.Fatalf("bad code span %d for %d code bytes", img.CodeSpan(), len(img.Code))
	}
	if img.DataStart() != img.CodeSpan()+uint64(img.GuardSize) {
		t.Fatal("data must start exactly one guard past the code span")
	}
	if img.MinDataSize() != 24+1000 {
		t.Fatalf("MinDataSize = %d, want 1024", img.MinDataSize())
	}
}

func TestNonexistenceEnforced(t *testing.T) {
	// A movri whose immediate contains the CFI magic must be caught.
	var magicImm int64
	for i, by := range isa.CFIMagic {
		magicImm |= int64(by) << (8 * i)
	}

	b := NewBuilder()
	b.Entry("_start")
	b.MovRI(isa.R1, magicImm)
	b.Trap()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Link(p); err == nil {
		t.Fatal("link should reject code embedding the CFI magic")
	}

	// MovRISafe emits a magic-free equivalent.
	b = NewBuilder()
	b.Entry("_start")
	b.MovRISafe(isa.R1, magicImm)
	b.Trap()
	p, err = b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Link(p); err != nil {
		t.Fatalf("MovRISafe variant should link: %v", err)
	}
}

func TestCFILabelAllowedByNonexistenceCheck(t *testing.T) {
	b := NewBuilder()
	b.Entry("_start")
	b.I(isa.Inst{Op: isa.OpCFILabel})
	b.Trap()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Link(p); err != nil {
		t.Fatalf("genuine cfi_label should pass the nonexistence check: %v", err)
	}
}
