// Package sched implements the M:N scheduler that multiplexes many SIPs
// over a bounded pool of harts.
//
// The paper's threading model gives each SIP one SGX thread (TCS) for its
// whole lifetime, which caps concurrency at the TCS budget and lets any
// blocked SIP hold a hardware thread hostage. This package decouples the
// two: a Scheduler runs a fixed pool of harts (one goroutine per
// configured TCS) over per-hart FIFO run queues with work stealing, and
// SIPs become resumable Tasks that are stepped one scheduling quantum at
// a time. A blocking operation does not block the hart — the task
// registers a waiter with the resource it needs, returns Park, and the
// hart moves on to the next runnable task; the resource's wakeup calls
// Unpark, which requeues the task.
//
// # Park/unpark protocol
//
// The lost-wakeup race (a wake arriving between the moment a task decides
// to park and the moment the hart commits the park) is closed with a
// latched wake flag, exactly like gopark/goready in the Go runtime:
//
//  1. The task, holding the resource's lock, registers a waiter callback
//     and returns Park. The callback's only job is to call G.Unpark.
//  2. The hart commits the park: it publishes state Parked, then checks
//     the wake latch. If a wake already landed, it atomically takes the
//     task back (Parked→Queued) and keeps running it.
//  3. Unpark sets the latch first, then tries the same Parked→Queued
//     transition. Exactly one side wins the CAS, so the task is requeued
//     exactly once.
//
// Because every parked operation is retried from scratch when the task
// next runs (and re-parks if still not ready), spurious wakeups are
// harmless; the protocol only has to guarantee at-least-once delivery of
// the *last* wake.
package sched

import (
	"sync"
	"sync/atomic"
	"time"
)

// Status is what a Task's Step reports back to its hart.
type Status uint8

const (
	// Yield: the quantum ended (cycle slice exhausted or preempted);
	// requeue the task.
	Yield Status = iota
	// Park: the task registered a waiter with a blocked resource;
	// hold it off the run queues until Unpark.
	Park
	// Done: the task finished; drop it.
	Done
)

// Task is a resumable coroutine the scheduler can run: each Step call
// executes one scheduling quantum and reports how it ended. Step is never
// called concurrently for one task.
type Task interface {
	Step() Status
}

// Preempter is implemented by tasks that can be asked to yield early —
// the scheduler requests preemption of running tasks when runnable work
// queues up and no hart is idle.
type Preempter interface {
	RequestPreempt()
}

// G states. A task is in exactly one of them; transitions are documented
// at each site.
const (
	gQueued  int32 = iota // on some hart's run queue
	gRunning              // being stepped by a hart
	gParked               // off the queues, waiting for Unpark
	gDone                 // finished
)

// G is the scheduler's handle for one task (the goroutine-analog).
type G struct {
	s    *Scheduler
	task Task

	state atomic.Int32
	// wake latches an Unpark that raced with parking; see the package
	// comment for the protocol.
	wake atomic.Bool
	// affinity is the hart the task last ran on; Unpark requeues there
	// for locality, and stealing rebalances when it is a bad guess.
	affinity atomic.Int32
}

// Unpark makes a parked task runnable again. It is safe to call from any
// goroutine, any number of times, in any task state: wakes to a running
// or queued task are latched and absorbed by the next park attempt, and
// wakes to a finished task are ignored.
func (g *G) Unpark() {
	g.wake.Store(true)
	if g.state.CompareAndSwap(gParked, gQueued) {
		g.wake.Store(false)
		g.s.stats.Unparks.Add(1)
		g.s.enqueue(g)
	}
}

// Done reports whether the task has finished.
func (g *G) Done() bool { return g.state.Load() == gDone }

// Stats counts scheduler events. All fields are cumulative and safe for
// concurrent use; BusyNS accumulates hart time spent inside Task.Step.
type Stats struct {
	Tasks       atomic.Uint64 // tasks ever submitted
	Slices      atomic.Uint64 // Step calls
	Yields      atomic.Uint64 // quanta ending in Yield
	Parks       atomic.Uint64 // committed parks
	Unparks     atomic.Uint64 // parked tasks made runnable
	Steals      atomic.Uint64 // tasks taken from another hart's queue
	PreemptReqs atomic.Uint64 // preemption requests issued by enqueue
	Preempts    atomic.Uint64 // preemptions delivered (bumped by the task layer)
	BusyNS      atomic.Int64  // total hart time inside Step
}

// Snapshot is a plain-value copy of Stats plus derived figures.
type Snapshot struct {
	Tasks, Slices, Yields, Parks, Unparks, Steals uint64
	PreemptReqs, Preempts                         uint64
	BusyNS, CapacityNS                            int64
}

// Utilization returns the fraction of hart-time spent running tasks.
func (s Snapshot) Utilization() float64 {
	if s.CapacityNS <= 0 {
		return 0
	}
	u := float64(s.BusyNS) / float64(s.CapacityNS)
	if u > 1 {
		u = 1
	}
	return u
}

// Sub returns the event delta s - o (capacity and busy time included).
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		Tasks: s.Tasks - o.Tasks, Slices: s.Slices - o.Slices,
		Yields: s.Yields - o.Yields, Parks: s.Parks - o.Parks,
		Unparks: s.Unparks - o.Unparks, Steals: s.Steals - o.Steals,
		PreemptReqs: s.PreemptReqs - o.PreemptReqs, Preempts: s.Preempts - o.Preempts,
		BusyNS: s.BusyNS - o.BusyNS, CapacityNS: s.CapacityNS - o.CapacityNS,
	}
}

// hart is one worker of the pool: a goroutine with a lock-protected FIFO
// run queue. The owner pops from the front; thieves steal from the back.
type hart struct {
	s  *Scheduler
	id int32

	mu   sync.Mutex
	q    []*G
	qlen atomic.Int32 // len(q), readable without mu

	// running is the task currently inside Step, exposed so enqueue can
	// request its preemption when work piles up.
	running atomic.Pointer[G]

	rng uint64 // xorshift state for steal-victim selection
}

// Scheduler runs tasks over a fixed pool of harts.
type Scheduler struct {
	harts []*hart

	// idleMu serializes the sleep/wake handshake: a hart only sleeps
	// after re-scanning every queue under idleMu, and enqueue signals
	// under the same lock, so a push is either seen by the re-scan or
	// its signal lands after the Wait.
	idleMu   sync.Mutex
	idleCond *sync.Cond
	idle     int
	stopped  bool
	// idlePending is a latched Kick: background work appeared while the
	// pool was asleep, so the next hart through sleep should re-scan and
	// give the idle hook a turn instead of blocking.
	idlePending bool

	// idleFn is the background-work hook (see SetIdle); idleActive makes
	// it single-flight so concurrent idle harts don't pile onto it.
	idleFn     atomic.Pointer[func() bool]
	idleActive atomic.Bool

	nextHart atomic.Uint32
	stopping atomic.Bool
	wg       sync.WaitGroup
	stats    Stats

	start    time.Time
	stopTime atomic.Int64 // unixnano at Stop, 0 while running
}

// New creates and starts a scheduler with n harts (n < 1 is clamped
// to 1).
func New(n int) *Scheduler {
	if n < 1 {
		n = 1
	}
	s := &Scheduler{start: time.Now()}
	s.idleCond = sync.NewCond(&s.idleMu)
	for i := 0; i < n; i++ {
		h := &hart{s: s, id: int32(i), rng: uint64(i)*0x9E3779B97F4A7C15 + 1}
		s.harts = append(s.harts, h)
	}
	for _, h := range s.harts {
		s.wg.Add(1)
		go h.loop()
	}
	register(s)
	return s
}

// NumHarts returns the pool size.
func (s *Scheduler) NumHarts() int { return len(s.harts) }

// Runnable returns the number of tasks currently sitting on run queues
// (excluding the ones inside Step right now). It reads the per-hart
// qlen atomics without locking, so the answer is a point-in-time
// estimate — exactly what admission control wants: the accept path
// sheds load when this climbs past a threshold, and a slightly stale
// reading only shifts the shed boundary by a connection or two.
func (s *Scheduler) Runnable() int {
	n := 0
	for _, h := range s.harts {
		n += int(h.qlen.Load())
	}
	return n
}

// Stats returns the live counters (for the task layer to bump Preempts
// and for stats consumers).
func (s *Scheduler) Stats() *Stats { return &s.stats }

// Go submits a task and returns its handle. The task starts in state
// Queued on a round-robin hart.
func (s *Scheduler) Go(t Task) *G {
	g := s.Prepare(t)
	s.Start(g)
	return g
}

// Prepare creates a handle without scheduling the task — so the task can
// stash its own handle (for self-unparks) before it can possibly run.
// Follow with Start.
func (s *Scheduler) Prepare(t Task) *G {
	g := &G{s: s, task: t}
	g.affinity.Store(int32(s.nextHart.Add(1) % uint32(len(s.harts))))
	return g
}

// Start schedules a Prepared task.
func (s *Scheduler) Start(g *G) {
	s.stats.Tasks.Add(1)
	s.enqueue(g)
}

// Stop shuts the hart pool down. Tasks still queued or parked are
// abandoned; callers must only Stop once all tasks have finished (the
// LibOS contract: Shutdown happens after processes exit).
func (s *Scheduler) Stop() {
	s.stopping.Store(true)
	s.idleMu.Lock()
	if s.stopped {
		s.idleMu.Unlock()
		return
	}
	s.stopped = true
	s.idleCond.Broadcast()
	s.idleMu.Unlock()
	s.wg.Wait()
	s.stopTime.Store(time.Now().UnixNano())
	unregister(s)
}

// Snapshot returns a consistent-enough copy of the counters plus the
// hart-time capacity accumulated so far.
func (s *Scheduler) Snapshot() Snapshot {
	end := time.Now().UnixNano()
	if t := s.stopTime.Load(); t != 0 {
		end = t
	}
	cap := (end - s.start.UnixNano()) * int64(len(s.harts))
	return Snapshot{
		Tasks: s.stats.Tasks.Load(), Slices: s.stats.Slices.Load(),
		Yields: s.stats.Yields.Load(), Parks: s.stats.Parks.Load(),
		Unparks: s.stats.Unparks.Load(), Steals: s.stats.Steals.Load(),
		PreemptReqs: s.stats.PreemptReqs.Load(), Preempts: s.stats.Preempts.Load(),
		BusyNS: s.stats.BusyNS.Load(), CapacityNS: cap,
	}
}

// SetIdle registers fn as the scheduler's idle-time background hook. A
// hart that finds no runnable work (its own queue and every steal victim
// empty) calls fn before committing to sleep; fn returns true when it did
// some work — the hart then re-scans the run queues instead of sleeping,
// so background work never delays a freshly enqueued task by more than
// one fn call. Calls are single-flight across harts: at most one hart is
// ever inside fn, the rest sleep as usual. When fn returns false the
// calling hart sleeps too, so a hook that latches "nothing left to do"
// (like the BlockStore scrubber's clean-pass latch) lets the pool
// quiesce completely. Passing nil removes the hook.
func (s *Scheduler) SetIdle(fn func() bool) {
	if fn == nil {
		s.idleFn.Store(nil)
		return
	}
	s.idleFn.Store(&fn)
}

// Kick wakes one sleeping hart so the idle hook gets a turn. Harts give
// the hook a shot on their own whenever they run out of tasks, but a
// fully quiesced pool only wakes for enqueued work — a mutation made
// off-hart (a host-thread VFS write, an explicit Sync) would otherwise
// never rouse the scrubber. The kick is latched, so it is not lost when
// every hart is busy: the next hart to go idle consumes it.
func (s *Scheduler) Kick() {
	s.idleMu.Lock()
	s.idlePending = true
	s.idleCond.Signal()
	s.idleMu.Unlock()
}

// runIdle gives the registered idle hook one shot (single-flight) and
// reports whether it did work.
func (h *hart) runIdle() bool {
	fnp := h.s.idleFn.Load()
	if fnp == nil {
		return false
	}
	if !h.s.idleActive.CompareAndSwap(false, true) {
		return false
	}
	worked := (*fnp)()
	h.s.idleActive.Store(false)
	return worked
}

// enqueue places g (state must already be Queued) on its affinity hart
// and wakes an idle hart — or, when none is idle, asks the busy hart's
// current task to yield early so queued work is not stuck behind a
// CPU-bound quantum.
func (s *Scheduler) enqueue(g *G) {
	h := s.harts[int(g.affinity.Load())%len(s.harts)]
	h.mu.Lock()
	h.q = append(h.q, g)
	h.qlen.Store(int32(len(h.q)))
	h.mu.Unlock()

	s.idleMu.Lock()
	idle := s.idle
	if idle > 0 {
		s.idleCond.Signal()
	}
	s.idleMu.Unlock()

	if idle == 0 {
		if cur := h.running.Load(); cur != nil {
			if p, ok := cur.task.(Preempter); ok {
				s.stats.PreemptReqs.Add(1)
				p.RequestPreempt()
			}
		}
	}
}

func (h *hart) loop() {
	defer h.s.wg.Done()
	for {
		if h.s.stopping.Load() {
			return
		}
		g := h.pop()
		if g == nil {
			g = h.steal()
		}
		if g == nil {
			if h.runIdle() {
				continue // idle work done something; re-scan for real work
			}
			if !h.sleep() {
				return
			}
			continue // re-scan after wakeup
		}
		h.run(g)
	}
}

// pop takes the oldest task off the hart's own queue.
func (h *hart) pop() *G {
	if h.qlen.Load() == 0 {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.q) == 0 {
		return nil
	}
	g := h.q[0]
	h.q = h.q[1:]
	h.qlen.Store(int32(len(h.q)))
	return g
}

// steal takes up to half of a random victim's queue (from the back, the
// coldest work), keeps one task to run and queues the rest locally.
func (h *hart) steal() *G {
	n := len(h.s.harts)
	if n == 1 {
		return nil
	}
	// xorshift64 victim order, different per hart.
	h.rng ^= h.rng << 13
	h.rng ^= h.rng >> 7
	h.rng ^= h.rng << 17
	start := int(h.rng % uint64(n))
	for i := 0; i < n; i++ {
		v := h.s.harts[(start+i)%n]
		if v == h || v.qlen.Load() == 0 {
			continue
		}
		v.mu.Lock()
		k := len(v.q)
		take := (k + 1) / 2
		if take == 0 {
			v.mu.Unlock()
			continue
		}
		stolen := append([]*G(nil), v.q[k-take:]...)
		v.q = v.q[:k-take]
		v.qlen.Store(int32(len(v.q)))
		v.mu.Unlock()

		h.s.stats.Steals.Add(uint64(take))
		for _, g := range stolen {
			g.affinity.Store(h.id)
		}
		if len(stolen) > 1 {
			h.mu.Lock()
			h.q = append(h.q, stolen[1:]...)
			h.qlen.Store(int32(len(h.q)))
			h.mu.Unlock()
		}
		return stolen[0]
	}
	return nil
}

// sleep blocks until work may be available. It returns false when the
// scheduler stopped. See idleMu for why the re-scan under the lock makes
// the handshake lossless.
func (h *hart) sleep() bool {
	s := h.s
	s.idleMu.Lock()
	defer s.idleMu.Unlock()
	for {
		if s.stopped {
			return false
		}
		if s.anyQueued() {
			return true
		}
		if s.idlePending {
			s.idlePending = false
			return true // re-scan; loop() will offer the idle hook a turn
		}
		s.idle++
		s.idleCond.Wait()
		s.idle--
	}
}

func (s *Scheduler) anyQueued() bool {
	for _, h := range s.harts {
		if h.qlen.Load() > 0 {
			return true
		}
	}
	return false
}

// run steps g until it yields, parks for real, or finishes. A park whose
// wake already landed is absorbed here and the task keeps running —
// the futex-wake-before-park fast path.
func (h *hart) run(g *G) {
	s := h.s
	for {
		g.state.Store(gRunning)
		g.affinity.Store(h.id)
		h.running.Store(g)
		t0 := time.Now()
		st := g.task.Step()
		s.stats.BusyNS.Add(int64(time.Since(t0)))
		s.stats.Slices.Add(1)
		h.running.Store(nil)

		switch st {
		case Done:
			g.state.Store(gDone)
			return
		case Yield:
			s.stats.Yields.Add(1)
			g.state.Store(gQueued)
			h.push(g)
			return
		case Park:
			// Commit the park, then re-check the latch: an Unpark that
			// fired while the task was deciding to park must not be
			// lost. Exactly one of this CAS and Unpark's CAS wins.
			g.state.Store(gParked)
			if g.wake.Load() && g.state.CompareAndSwap(gParked, gQueued) {
				g.wake.Store(false)
				continue // wake raced the park: keep running
			}
			s.stats.Parks.Add(1)
			return
		}
	}
}

// push appends to the hart's own queue (used for yields, keeping the
// task local).
func (h *hart) push(g *G) {
	h.mu.Lock()
	h.q = append(h.q, g)
	h.qlen.Store(int32(len(h.q)))
	h.mu.Unlock()
}

// --- Global aggregation (for occlum-bench -schedstats) -------------------

// Live schedulers are enumerated for GlobalSnapshot; a stopped
// scheduler folds its final snapshot into the retired accumulator and
// leaves the registry, so long-lived processes that boot many kernels
// (the bench binary, the test suite) retain no dead Scheduler objects.
var (
	regMu    sync.Mutex
	registry []*Scheduler
	retired  Snapshot
)

func register(s *Scheduler) {
	regMu.Lock()
	registry = append(registry, s)
	regMu.Unlock()
}

func unregister(s *Scheduler) {
	final := s.Snapshot() // capacity frozen: stopTime is set
	regMu.Lock()
	defer regMu.Unlock()
	for i, r := range registry {
		if r == s {
			registry = append(registry[:i], registry[i+1:]...)
			break
		}
	}
	retired.accumulate(final)
}

func (t *Snapshot) accumulate(s Snapshot) {
	t.Tasks += s.Tasks
	t.Slices += s.Slices
	t.Yields += s.Yields
	t.Parks += s.Parks
	t.Unparks += s.Unparks
	t.Steals += s.Steals
	t.PreemptReqs += s.PreemptReqs
	t.Preempts += s.Preempts
	t.BusyNS += s.BusyNS
	t.CapacityNS += s.CapacityNS
}

// GlobalSnapshot sums the snapshots of every scheduler created by this
// process, live or stopped — the sched analog of vm.GlobalCacheStats,
// so benchmark drivers can report totals without owning the kernels.
func GlobalSnapshot() Snapshot {
	regMu.Lock()
	defer regMu.Unlock()
	total := retired
	for _, s := range registry {
		total.accumulate(s.Snapshot())
	}
	return total
}
