package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countTask yields n times, then finishes.
type countTask struct {
	n    int
	done chan struct{}
}

func (t *countTask) Step() Status {
	if t.n <= 0 {
		close(t.done)
		return Done
	}
	t.n--
	return Yield
}

func TestManyTasksFewHarts(t *testing.T) {
	s := New(2)
	defer s.Stop()
	const tasks = 100
	dones := make([]chan struct{}, tasks)
	for i := range dones {
		dones[i] = make(chan struct{})
		s.Go(&countTask{n: 10, done: dones[i]})
	}
	for i, d := range dones {
		select {
		case <-d:
		case <-time.After(10 * time.Second):
			t.Fatalf("task %d never finished", i)
		}
	}
	if got := s.Snapshot().Tasks; got != tasks {
		t.Fatalf("Tasks = %d, want %d", got, tasks)
	}
}

// parkTask parks on every step until woken `wakes` times, then finishes.
type parkTask struct {
	g      atomic.Pointer[G]
	remain atomic.Int64
	parked chan struct{} // signaled once on first park decision
	once   sync.Once
	done   chan struct{}
}

func (t *parkTask) Step() Status {
	if t.remain.Load() <= 0 {
		close(t.done)
		return Done
	}
	t.once.Do(func() { close(t.parked) })
	return Park
}

func (t *parkTask) wake() {
	t.remain.Add(-1)
	if g := t.g.Load(); g != nil {
		g.Unpark()
	}
}

func TestParkUnpark(t *testing.T) {
	s := New(1)
	defer s.Stop()
	pt := &parkTask{parked: make(chan struct{}), done: make(chan struct{})}
	pt.remain.Store(3)
	pt.g.Store(s.Go(pt))
	<-pt.parked
	for i := 0; i < 3; i++ {
		time.Sleep(time.Millisecond)
		pt.wake()
	}
	select {
	case <-pt.done:
	case <-time.After(10 * time.Second):
		t.Fatal("parked task never finished")
	}
	if parks := s.Snapshot().Parks; parks == 0 {
		t.Fatal("no parks recorded")
	}
}

// TestUnparkStorm hammers Unpark from many goroutines against a task
// that parks between wakes — the lost-wakeup race under load. The task
// finishes only if every final wake is delivered.
func TestUnparkStorm(t *testing.T) {
	s := New(4)
	defer s.Stop()
	const rounds = 200
	pt := &parkTask{parked: make(chan struct{}), done: make(chan struct{})}
	pt.remain.Store(rounds)
	pt.g.Store(s.Go(pt))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds/8; i++ {
				pt.wake()
			}
		}()
	}
	wg.Wait()
	select {
	case <-pt.done:
	case <-time.After(10 * time.Second):
		t.Fatal("task lost a wakeup")
	}
}

// spinTask runs until told to stop, yielding each quantum — used to
// occupy harts so stealing has something to balance.
type spinTask struct {
	stop atomic.Bool
	done chan struct{}
}

func (t *spinTask) Step() Status {
	if t.stop.Load() {
		close(t.done)
		return Done
	}
	return Yield
}

func TestWorkStealingBalancesLoad(t *testing.T) {
	// Steals happen in the submission transient, when a waking hart
	// finds its own queue empty while siblings already hold tasks.
	// Whether any hart wakes inside that window is scheduling luck on
	// a GOMAXPROCS=1 box (CI under -race), so the property is checked
	// over several independent rounds rather than one 50 ms shot.
	for attempt := 0; attempt < 5; attempt++ {
		if spinRoundSteals(t) > 0 {
			return
		}
	}
	t.Fatal("no steals recorded in 5 rounds of 32 spinning tasks on 4 harts")
}

// spinRoundSteals runs one round of 32 spinning tasks on a fresh 4-hart
// scheduler and reports the steals observed.
func spinRoundSteals(t *testing.T) uint64 {
	t.Helper()
	s := New(4)
	defer s.Stop()
	var tasks []*spinTask
	for i := 0; i < 32; i++ {
		st := &spinTask{done: make(chan struct{})}
		tasks = append(tasks, st)
		s.Go(st)
	}
	time.Sleep(50 * time.Millisecond)
	for _, st := range tasks {
		st.stop.Store(true)
	}
	for _, st := range tasks {
		<-st.done
	}
	return s.Snapshot().Steals
}

// slowTask occupies a hart with long quanta and records preemption
// requests.
type slowTask struct {
	stop     atomic.Bool
	done     chan struct{}
	preempts atomic.Int64
}

func (t *slowTask) Step() Status {
	if t.stop.Load() {
		close(t.done)
		return Done
	}
	time.Sleep(2 * time.Millisecond)
	return Yield
}

func (t *slowTask) RequestPreempt() { t.preempts.Add(1) }

func TestEnqueuePreemptsSaturatedHarts(t *testing.T) {
	s := New(1)
	defer s.Stop()
	running := &slowTask{done: make(chan struct{})}
	s.Go(running)

	// With the only hart saturated, enqueues must ask the running task
	// to yield early.
	deadline := time.Now().Add(5 * time.Second)
	for running.preempts.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no preemption requested on a saturated pool")
		}
		s.Go(&countTask{n: 0, done: make(chan struct{})})
		time.Sleep(time.Millisecond)
	}
	running.stop.Store(true)
	<-running.done
}

func TestUnparkBeforeParkCommitIsAbsorbed(t *testing.T) {
	// A task whose waiter fires immediately (wake-before-park): it must
	// keep running, not deadlock.
	s := New(1)
	defer s.Stop()
	pt := &parkTask{parked: make(chan struct{}), done: make(chan struct{})}
	pt.remain.Store(1)
	g := s.Go(pt)
	pt.g.Store(g)
	// Fire the wake the instant the task decides to park.
	go func() {
		<-pt.parked
		pt.wake()
	}()
	select {
	case <-pt.done:
	case <-time.After(10 * time.Second):
		t.Fatal("immediate wake was lost")
	}
}
