package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countTask yields n times, then finishes.
type countTask struct {
	n    int
	done chan struct{}
}

func (t *countTask) Step() Status {
	if t.n <= 0 {
		close(t.done)
		return Done
	}
	t.n--
	return Yield
}

func TestManyTasksFewHarts(t *testing.T) {
	s := New(2)
	defer s.Stop()
	const tasks = 100
	dones := make([]chan struct{}, tasks)
	for i := range dones {
		dones[i] = make(chan struct{})
		s.Go(&countTask{n: 10, done: dones[i]})
	}
	for i, d := range dones {
		select {
		case <-d:
		case <-time.After(10 * time.Second):
			t.Fatalf("task %d never finished", i)
		}
	}
	if got := s.Snapshot().Tasks; got != tasks {
		t.Fatalf("Tasks = %d, want %d", got, tasks)
	}
}

// parkTask parks on every step until woken `wakes` times, then finishes.
type parkTask struct {
	g      atomic.Pointer[G]
	remain atomic.Int64
	parked chan struct{} // signaled once on first park decision
	once   sync.Once
	done   chan struct{}
}

func (t *parkTask) Step() Status {
	if t.remain.Load() <= 0 {
		close(t.done)
		return Done
	}
	t.once.Do(func() { close(t.parked) })
	return Park
}

func (t *parkTask) wake() {
	t.remain.Add(-1)
	if g := t.g.Load(); g != nil {
		g.Unpark()
	}
}

func TestParkUnpark(t *testing.T) {
	s := New(1)
	defer s.Stop()
	pt := &parkTask{parked: make(chan struct{}), done: make(chan struct{})}
	pt.remain.Store(3)
	pt.g.Store(s.Go(pt))
	<-pt.parked
	for i := 0; i < 3; i++ {
		time.Sleep(time.Millisecond)
		pt.wake()
	}
	select {
	case <-pt.done:
	case <-time.After(10 * time.Second):
		t.Fatal("parked task never finished")
	}
	if parks := s.Snapshot().Parks; parks == 0 {
		t.Fatal("no parks recorded")
	}
}

// TestUnparkStorm hammers Unpark from many goroutines against a task
// that parks between wakes — the lost-wakeup race under load. The task
// finishes only if every final wake is delivered.
func TestUnparkStorm(t *testing.T) {
	s := New(4)
	defer s.Stop()
	const rounds = 200
	pt := &parkTask{parked: make(chan struct{}), done: make(chan struct{})}
	pt.remain.Store(rounds)
	pt.g.Store(s.Go(pt))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds/8; i++ {
				pt.wake()
			}
		}()
	}
	wg.Wait()
	select {
	case <-pt.done:
	case <-time.After(10 * time.Second):
		t.Fatal("task lost a wakeup")
	}
}

// spinTask runs until told to stop, yielding each quantum — used to
// occupy harts so stealing has something to balance.
type spinTask struct {
	stop atomic.Bool
	done chan struct{}
}

func (t *spinTask) Step() Status {
	if t.stop.Load() {
		close(t.done)
		return Done
	}
	return Yield
}

func TestWorkStealingBalancesLoad(t *testing.T) {
	// Steals happen in the submission transient, when a waking hart
	// finds its own queue empty while siblings already hold tasks.
	// Whether any hart wakes inside that window is scheduling luck on
	// a GOMAXPROCS=1 box (CI under -race), so the property is checked
	// over several independent rounds rather than one 50 ms shot.
	for attempt := 0; attempt < 5; attempt++ {
		if spinRoundSteals(t) > 0 {
			return
		}
	}
	t.Fatal("no steals recorded in 5 rounds of 32 spinning tasks on 4 harts")
}

// spinRoundSteals runs one round of 32 spinning tasks on a fresh 4-hart
// scheduler and reports the steals observed.
func spinRoundSteals(t *testing.T) uint64 {
	t.Helper()
	s := New(4)
	defer s.Stop()
	var tasks []*spinTask
	for i := 0; i < 32; i++ {
		st := &spinTask{done: make(chan struct{})}
		tasks = append(tasks, st)
		s.Go(st)
	}
	time.Sleep(50 * time.Millisecond)
	for _, st := range tasks {
		st.stop.Store(true)
	}
	for _, st := range tasks {
		<-st.done
	}
	return s.Snapshot().Steals
}

// slowTask occupies a hart with long quanta and records preemption
// requests.
type slowTask struct {
	stop     atomic.Bool
	done     chan struct{}
	preempts atomic.Int64
}

func (t *slowTask) Step() Status {
	if t.stop.Load() {
		close(t.done)
		return Done
	}
	time.Sleep(2 * time.Millisecond)
	return Yield
}

func (t *slowTask) RequestPreempt() { t.preempts.Add(1) }

func TestEnqueuePreemptsSaturatedHarts(t *testing.T) {
	s := New(1)
	defer s.Stop()
	running := &slowTask{done: make(chan struct{})}
	s.Go(running)

	// With the only hart saturated, enqueues must ask the running task
	// to yield early.
	deadline := time.Now().Add(5 * time.Second)
	for running.preempts.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no preemption requested on a saturated pool")
		}
		s.Go(&countTask{n: 0, done: make(chan struct{})})
		time.Sleep(time.Millisecond)
	}
	running.stop.Store(true)
	<-running.done
}

func TestUnparkBeforeParkCommitIsAbsorbed(t *testing.T) {
	// A task whose waiter fires immediately (wake-before-park): it must
	// keep running, not deadlock.
	s := New(1)
	defer s.Stop()
	pt := &parkTask{parked: make(chan struct{}), done: make(chan struct{})}
	pt.remain.Store(1)
	g := s.Go(pt)
	pt.g.Store(g)
	// Fire the wake the instant the task decides to park.
	go func() {
		<-pt.parked
		pt.wake()
	}()
	select {
	case <-pt.done:
	case <-time.After(10 * time.Second):
		t.Fatal("immediate wake was lost")
	}
}

// TestIdleHook checks the idle-time background hook: it runs only when
// harts have nothing else to do, is single-flight across harts, and lets
// the pool quiesce once it reports no more work.
func TestIdleHook(t *testing.T) {
	s := New(4)
	defer s.Stop()

	var calls, inFlight, maxFlight atomic.Int64
	const budget = 50
	s.SetIdle(func() bool {
		if n := inFlight.Add(1); n > maxFlight.Load() {
			maxFlight.Store(n)
		}
		time.Sleep(100 * time.Microsecond) // widen the overlap window
		inFlight.Add(-1)
		return calls.Add(1) <= budget
	})

	// Foreground work must still finish promptly with the hook installed.
	done := make(chan struct{})
	s.Go(&countTask{n: 10, done: done})
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("foreground task starved by idle hook")
	}

	deadline := time.Now().Add(10 * time.Second)
	for calls.Load() <= budget {
		if time.Now().After(deadline) {
			t.Fatalf("idle hook ran %d times, want > %d", calls.Load(), budget)
		}
		time.Sleep(time.Millisecond)
	}
	if mf := maxFlight.Load(); mf != 1 {
		t.Fatalf("idle hook ran %d-way concurrent, want single-flight", mf)
	}

	// After the hook goes dry the pool must quiesce: call count stops
	// growing (each hart sleeps after one false return).
	time.Sleep(50 * time.Millisecond)
	settled := calls.Load()
	time.Sleep(100 * time.Millisecond)
	if grew := calls.Load() - settled; grew > int64(s.NumHarts()) {
		t.Fatalf("idle hook still called %d times after going dry", grew)
	}

	// Removing the hook is safe while harts are live.
	s.SetIdle(nil)
	done2 := make(chan struct{})
	s.Go(&countTask{n: 5, done: done2})
	select {
	case <-done2:
	case <-time.After(10 * time.Second):
		t.Fatal("task after SetIdle(nil) never finished")
	}
}
