package mem

import (
	"bytes"
	"testing"
)

func viewTestMem(t *testing.T) *Paged {
	t.Helper()
	m := NewPaged(0x10000, 16*PageSize)
	if err := m.Map(0x10000, 4*PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestViewBytesAliasesGuestMemory(t *testing.T) {
	m := viewTestMem(t)
	base := uint64(0x10000)
	if err := m.WriteDirect(base, []byte("hello world")); err != nil {
		t.Fatal(err)
	}

	// A read loan sees the guest bytes without a copy: a later store is
	// visible through the already-taken loan.
	v, f := m.ViewBytes(base, 11, AccessRead)
	if f != nil {
		t.Fatal(f)
	}
	if !bytes.Equal(v.B, []byte("hello world")) {
		t.Fatalf("loan bytes = %q", v.B)
	}
	if f := m.Store(base, 1, 'H'); f != nil {
		t.Fatal(f)
	}
	if v.B[0] != 'H' {
		t.Fatal("loan does not alias guest memory")
	}

	// A write loan publishes in place.
	w, f := m.ViewBytes(base+100, 3, AccessWrite)
	if f != nil {
		t.Fatal(f)
	}
	copy(w.B, "abc")
	if !w.CommitWrite(3) {
		t.Fatal("fresh write loan refused commit")
	}
	got, f := m.ReadAt(base+100, 3)
	if f != nil {
		t.Fatal(f)
	}
	if !bytes.Equal(got, []byte("abc")) {
		t.Fatalf("committed bytes = %q", got)
	}
}

func TestViewBytesPermissionChecked(t *testing.T) {
	m := viewTestMem(t)
	base := uint64(0x10000)
	if err := m.Map(base+2*PageSize, PageSize, PermR); err != nil {
		t.Fatal(err)
	}

	// Write loan over a read-only page faults, even mid-span.
	if _, f := m.ViewBytes(base+PageSize, 2*PageSize, AccessWrite); f == nil {
		t.Fatal("write loan over r-- page did not fault")
	}
	// Read loan over the same span is fine (pages 1..2 are R at least).
	if _, f := m.ViewBytes(base+PageSize, 2*PageSize, AccessRead); f != nil {
		t.Fatal(f)
	}
	// Any loan over an unmapped page faults.
	if _, f := m.ViewBytes(base+8*PageSize, 8, AccessRead); f == nil {
		t.Fatal("loan over unmapped page did not fault")
	}
	// Out-of-range loan faults rather than slicing past the backing.
	if _, f := m.ViewBytes(m.Limit()-4, 8, AccessRead); f == nil {
		t.Fatal("out-of-range loan did not fault")
	}
	// Zero-length loans are empty and valid.
	v, f := m.ViewBytes(base, 0, AccessRead)
	if f != nil || len(v.B) != 0 || v.Revoked() {
		t.Fatalf("zero-length loan: %v %v %v", f, v.B, v.Revoked())
	}
}

func TestViewRevokedByRemap(t *testing.T) {
	m := viewTestMem(t)
	base := uint64(0x10000)

	v, f := m.ViewBytes(base, 2*PageSize, AccessRead)
	if f != nil {
		t.Fatal(f)
	}
	if v.Revoked() {
		t.Fatal("fresh loan already revoked")
	}

	// Plain data stores are the traffic loans carry — no revocation.
	if f := m.Store(base+8, 8, 0xdeadbeef); f != nil {
		t.Fatal(f)
	}
	if v.Revoked() {
		t.Fatal("data store revoked loan")
	}
	// A remap outside the span leaves the loan alone.
	if err := m.Map(base+3*PageSize, PageSize, PermR); err != nil {
		t.Fatal(err)
	}
	if v.Revoked() {
		t.Fatal("unrelated remap revoked loan")
	}

	// A remap of ANY page under the span — even permission-identical —
	// kills the loan, and a revoked write loan refuses to commit.
	w, f := m.ViewBytes(base, 2*PageSize, AccessWrite)
	if f != nil {
		t.Fatal(f)
	}
	if err := m.Map(base+PageSize, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	if !v.Revoked() {
		t.Fatal("remap under span did not revoke read loan")
	}
	if w.CommitWrite(16) {
		t.Fatal("revoked write loan committed")
	}
}

func TestViewRevokedByTrustedWrite(t *testing.T) {
	m := viewTestMem(t)
	base := uint64(0x10000)
	v, f := m.ViewBytes(base+PageSize, 64, AccessRead)
	if f != nil {
		t.Fatal(f)
	}
	// WriteDirect models the loader/LibOS rewriting the page under the
	// guest — translation caches flush, and so do loans.
	if err := m.WriteDirect(base+PageSize+8, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if !v.Revoked() {
		t.Fatal("trusted write under span did not revoke loan")
	}
}

func TestViewCommitWriteStampsExecPages(t *testing.T) {
	m := viewTestMem(t)
	base := uint64(0x10000)
	code := base + 5*PageSize
	if err := m.Map(code, PageSize, PermRWX); err != nil {
		t.Fatal(err)
	}

	w, f := m.ViewBytes(code, 32, AccessWrite)
	if f != nil {
		t.Fatal(f)
	}
	before := m.GenerationOf(code, 32)
	copy(w.B, []byte{0x90, 0x90, 0x90, 0x90})
	if !w.CommitWrite(4) {
		t.Fatal("commit refused")
	}
	// Writing code through a loan must invalidate translations exactly
	// like WriteAt: the exec page's generation moves.
	if after := m.GenerationOf(code, 32); after <= before {
		t.Fatalf("exec-page commit did not stamp: gen %d -> %d", before, after)
	}
}
