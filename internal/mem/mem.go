// Package mem provides the paged, permission-checked memory substrate that
// both the SGX enclave model (internal/sgx) and the native-Linux baseline
// (internal/linuxsim) build on.
//
// A Paged memory is a contiguous range of virtual addresses divided into
// 4 KiB pages. Every page is either unmapped or mapped with some
// combination of read/write/execute permissions. Accesses that touch an
// unmapped page or violate permissions return a Fault — the model of the
// hardware #PF that makes MMDSFI's guard regions and non-executable data
// regions effective.
package mem

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// PageSize is the page granularity, matching SGX EPC pages.
const PageSize = 4096

// pageShift is log2(PageSize), for the single-page fast paths.
const pageShift = 12

// Perm is a page permission bit set.
type Perm uint8

// Permission bits.
const (
	PermR Perm = 1 << iota // readable
	PermW                  // writable
	PermX                  // executable

	PermRW  = PermR | PermW
	PermRX  = PermR | PermX
	PermRWX = PermR | PermW | PermX
)

// String renders the permission like "rwx".
func (p Perm) String() string {
	s := []byte("---")
	if p&PermR != 0 {
		s[0] = 'r'
	}
	if p&PermW != 0 {
		s[1] = 'w'
	}
	if p&PermX != 0 {
		s[2] = 'x'
	}
	return string(s)
}

// Access distinguishes the kinds of memory access for fault reporting.
type Access uint8

// Access kinds.
const (
	AccessRead Access = iota
	AccessWrite
	AccessExec
)

func (a Access) String() string {
	switch a {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExec:
		return "exec"
	}
	return "access?"
}

// Fault describes a memory access violation (the hardware #PF analog).
type Fault struct {
	// Addr is the faulting virtual address.
	Addr uint64
	// Access is the attempted access kind.
	Access Access
	// Unmapped is true when the page was not mapped at all (e.g. an
	// MMDSFI guard region), false for a permission violation.
	Unmapped bool
}

// Error implements the error interface.
func (f *Fault) Error() string {
	why := "permission violation"
	if f.Unmapped {
		why = "unmapped page"
	}
	return fmt.Sprintf("page fault: %s at %#x: %s", f.Access, f.Addr, why)
}

// ErrRange reports an address range outside the memory object entirely.
var ErrRange = errors.New("mem: address out of range")

// Paged is a permission-checked paged memory over a contiguous virtual
// address range [Base, Base+Size).
type Paged struct {
	base uint64
	data []byte
	// perms holds one permission word per page; 0 means unmapped. The
	// elements are atomic because SIP harts in one enclave share a Paged
	// with the LibOS: a hart's permission check (check, stampExec) can
	// race a concurrent Map from another thread.
	perms []atomic.Uint32
	// wx counts pages currently mapped writable+executable. While it is
	// zero — the overwhelmingly common case outside the loader — no
	// untrusted store can touch an executable page (stores need PermW),
	// so stampExec reduces to this single counter check. Map publishes
	// increments BEFORE the permission words and decrements after, so a
	// store that observes a W+X mapping can never see a zero counter.
	wx atomic.Int64

	// gen is a monotonic sequence number of code-affecting mutations:
	// mapping changes, trusted writes, and stores that hit an executable
	// page. pageGen records, per page, the gen value of the last such
	// mutation touching that page, so virtual CPUs can invalidate their
	// translated-code caches at page granularity — a store to a data
	// page never disturbs the generation of a code page.
	//
	// All are maintained with atomics, and every mutator writes its
	// bytes (or permissions) BEFORE stamping: SIP harts in one enclave
	// share a Paged and may mutate concurrently with the LibOS. The
	// write-then-stamp order gives translators a sound protocol — read
	// Generation() before decoding, and treat any span stamp above that
	// snapshot as an invalidation — under which a decode that raced a
	// mutation can never be cached with a generation that hides it.
	//
	// stamping counts stamp operations currently in flight (global
	// counter bumped, page stamps possibly not yet stored). Translation
	// caches that memoize "this block was valid as of Generation() == G"
	// may do so only when Quiescent() held before their span check:
	// otherwise a span check could miss an in-flight page stamp whose
	// value is already ≤ G, and the memo would hide that mutation
	// forever (a per-visit span check merely sees it one visit later).
	gen      atomic.Uint64
	stamping atomic.Int64
	pageGen  []uint64 // elements accessed atomically
}

// NewPaged creates a memory of size bytes (rounded up to a whole number of
// pages) based at base. All pages start unmapped. base must be
// page-aligned.
func NewPaged(base, size uint64) *Paged {
	if base%PageSize != 0 {
		panic("mem: base must be page-aligned")
	}
	npages := (size + PageSize - 1) / PageSize
	return &Paged{
		base:    base,
		data:    make([]byte, npages*PageSize),
		perms:   make([]atomic.Uint32, npages),
		pageGen: make([]uint64, npages),
	}
}

// Base returns the lowest virtual address of the memory.
func (m *Paged) Base() uint64 { return m.base }

// Size returns the size of the virtual range in bytes.
func (m *Paged) Size() uint64 { return uint64(len(m.data)) }

// Limit returns one past the highest virtual address.
func (m *Paged) Limit() uint64 { return m.base + uint64(len(m.data)) }

// Generation returns the global mutation counter. It increases whenever
// the mapping is changed (Map), contents are changed through trusted
// interfaces (WriteDirect), or an untrusted store hits an executable
// page — every event after which previously decoded code may be stale.
func (m *Paged) Generation() uint64 { return m.gen.Load() }

// BumpGeneration advances the global mutation counter without stamping
// any page — to every translation-cache memo, an "unrelated mutation"
// that forces one re-validation (which succeeds, since no page moved).
// The interpreter's preemption request uses it to knock chained
// execution off its fast path, whose per-block Generation() load then
// doubles as the preempt poll: asynchronous preemption costs the hot
// path nothing.
func (m *Paged) BumpGeneration() { m.gen.Add(1) }

// GenerationOf returns the mutation generation of the span
// [addr, addr+n): the largest per-page generation over the pages the
// span overlaps. Translated-code caches snapshot this value when
// decoding a block and treat any later change as an invalidation
// signal; mutations of pages outside the span leave it untouched.
// A degenerate or out-of-range span reports 0.
func (m *Paged) GenerationOf(addr uint64, n int) uint64 {
	if n <= 0 || !m.Contains(addr, n) {
		return 0
	}
	first, last := m.pageIndex(addr), m.pageIndex(addr+uint64(n)-1)
	if first == last {
		// Single-page span — the common case for translated basic
		// blocks, revalidated on every chained block transition.
		return atomic.LoadUint64(&m.pageGen[first])
	}
	var g uint64
	for i := first; i <= last; i++ {
		if pg := atomic.LoadUint64(&m.pageGen[i]); pg > g {
			g = pg
		}
	}
	return g
}

// Span is a byte range of translated code together with the generation
// snapshot under which its bytes were decoded. Multi-block translation
// units (the vm's superblocks) record one Span per component block and
// revalidate them all with SpansCurrent — the same write-then-stamp
// protocol as single blocks, span by span.
type Span struct {
	Addr uint64
	N    int
	Gen  uint64
}

// SpansCurrent reports whether every span is still current: no page a
// span overlaps carries a stamp above that span's Gen snapshot. Under
// the write-then-stamp protocol this means no mutation the spans' decode
// could have missed has touched them, so a translation unit built from
// them all may keep executing. Like GenerationOf, a concurrent in-flight
// stamp may be transiently missed; callers memoizing a true result
// against Generation() must sample Quiescent() before calling.
func (m *Paged) SpansCurrent(spans []Span) bool {
	for i := range spans {
		if m.GenerationOf(spans[i].Addr, spans[i].N) > spans[i].Gen {
			return false
		}
	}
	return true
}

// stamp records one mutation touching pages [first, last]. The
// stamping window opens before the counter bump and closes after the
// last page stamp lands, so Quiescent() can tell validators when no
// stamp value ≤ Generation() is still in flight.
func (m *Paged) stamp(first, last int) {
	m.stamping.Add(1)
	g := m.gen.Add(1)
	for i := first; i <= last; i++ {
		storeMax(&m.pageGen[i], g)
	}
	m.stamping.Add(-1)
}

// Quiescent reports that no stamp operation was in flight at the
// moment of the call: every page stamp of every mutation counted in
// Generation() is visible. Callers memoizing validity against a
// Generation() value must sample this BEFORE their span checks —
// mutations starting later will advance Generation() past the
// memoized value and so cannot be hidden by the memo.
func (m *Paged) Quiescent() bool { return m.stamping.Load() == 0 }

// storeMax publishes g to *p unless a concurrent stamper already
// published a later one — a blind store could bury a newer stamp under
// an older value and hide that mutation from translators forever.
func storeMax(p *uint64, g uint64) {
	for {
		old := atomic.LoadUint64(p)
		if old >= g || atomic.CompareAndSwapUint64(p, old, g) {
			return
		}
	}
}

// stampExec records a store to [addr, addr+n) on whichever of its pages
// are executable. Stores to plain data pages leave every generation
// untouched (they cannot stale decoded code); stores through a
// writable+executable mapping — self-modifying code, as in a LibOS
// loader pool — invalidate exactly the pages written.
func (m *Paged) stampExec(addr uint64, n int) {
	if m.wx.Load() == 0 {
		// No writable+executable page exists, and the store already
		// passed its write-permission check — it cannot have touched an
		// executable page. One counter load instead of a page scan.
		return
	}
	if n <= 0 {
		return
	}
	first, last := m.pageIndex(addr), m.pageIndex(addr+uint64(n)-1)
	var g uint64
	stamping := false
	for i := first; i <= last; i++ {
		if Perm(m.perms[i].Load())&PermX != 0 {
			if !stamping {
				// Open the stamping window before the counter bump,
				// as in stamp.
				m.stamping.Add(1)
				stamping = true
				g = m.gen.Add(1)
			}
			storeMax(&m.pageGen[i], g)
		}
	}
	if stamping {
		m.stamping.Add(-1)
	}
}

// Contains reports whether [addr, addr+n) lies inside the virtual range.
func (m *Paged) Contains(addr uint64, n int) bool {
	return addr >= m.base && addr+uint64(n) >= addr && addr+uint64(n) <= m.Limit()
}

func (m *Paged) pageIndex(addr uint64) int { return int((addr - m.base) / PageSize) }

// Map sets the permission of every page overlapping [addr, addr+n) to
// perm. Mapping with perm 0 unmaps the pages. addr and n need not be
// page-aligned; the whole overlapped pages are affected.
func (m *Paged) Map(addr uint64, n uint64, perm Perm) error {
	if n == 0 {
		return nil
	}
	if !m.Contains(addr, 1) || !m.Contains(addr+n-1, 1) {
		return fmt.Errorf("%w: map [%#x,+%#x)", ErrRange, addr, n)
	}
	first, last := m.pageIndex(addr), m.pageIndex(addr+n-1)
	isWX := perm&PermW != 0 && perm&PermX != 0
	if isWX {
		// Count the pages before their permissions become visible: a
		// concurrent store that observes the new W+X mapping must not
		// pass stampExec's zero-counter fast path.
		m.wx.Add(int64(last - first + 1))
	}
	var wasWX int64
	for i := first; i <= last; i++ {
		old := Perm(m.perms[i].Swap(uint32(perm)))
		if old&PermW != 0 && old&PermX != 0 {
			wasWX++
		}
	}
	// Pages that were already W+X are either double-counted (isWX) or
	// no longer W+X; either way their old count comes off now, after
	// the permission words are published.
	if wasWX > 0 {
		m.wx.Add(-wasWX)
	}
	m.stamp(first, last)
	return nil
}

// PermAt returns the permission of the page containing addr, or 0 if addr
// is outside the range.
func (m *Paged) PermAt(addr uint64) Perm {
	if !m.Contains(addr, 1) {
		return 0
	}
	return Perm(m.perms[m.pageIndex(addr)].Load())
}

// check validates an n-byte access at addr for the given access kind.
func (m *Paged) check(addr uint64, n int, access Access) *Fault {
	if n <= 0 {
		return nil
	}
	if !m.Contains(addr, n) {
		return &Fault{Addr: addr, Access: access, Unmapped: true}
	}
	var need Perm
	switch access {
	case AccessRead:
		need = PermR
	case AccessWrite:
		need = PermW
	case AccessExec:
		need = PermX
	}
	first, last := m.pageIndex(addr), m.pageIndex(addr+uint64(n)-1)
	for i := first; i <= last; i++ {
		p := Perm(m.perms[i].Load())
		if p&need == 0 {
			return &Fault{
				Addr:     max64(addr, m.base+uint64(i)*PageSize),
				Access:   access,
				Unmapped: p == 0,
			}
		}
	}
	return nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// inOnePage reports whether [off, off+n) lies inside the data slice and
// within a single page, and returns the page index. It is the guard of
// the single-page fast paths: callers substitute one bounds compare and
// one permission load for the general Contains + per-page loop. An off
// that underflowed (addr below base) wraps to a huge value and fails the
// length compare.
func (m *Paged) inOnePage(off uint64, n uint64) (int, bool) {
	if off >= uint64(len(m.data)) || uint64(len(m.data))-off < n {
		return 0, false
	}
	pg := off >> pageShift
	if (off+n-1)>>pageShift != pg {
		return 0, false
	}
	return int(pg), true
}

// Load reads an n-byte little-endian value (n must be 1 or 8) at addr,
// checking read permission on every page touched.
func (m *Paged) Load(addr uint64, n int) (uint64, *Fault) {
	off := addr - m.base
	if n == 8 {
		if pg, ok := m.inOnePage(off, 8); ok && Perm(m.perms[pg].Load())&PermR != 0 {
			b := m.data[off : off+8]
			return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
				uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56, nil
		}
	} else if n == 1 {
		if pg, ok := m.inOnePage(off, 1); ok && Perm(m.perms[pg].Load())&PermR != 0 {
			return uint64(m.data[off]), nil
		}
	}
	// Slow path: cross-page accesses and fault materialization.
	if f := m.check(addr, n, AccessRead); f != nil {
		return 0, f
	}
	if n == 1 {
		return uint64(m.data[off]), nil
	}
	b := m.data[off : off+8]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56, nil
}

// Store writes an n-byte little-endian value (n must be 1 or 8) at addr,
// checking write permission on every page touched. The store is atomic
// with respect to faults: nothing is written if any byte would fault.
func (m *Paged) Store(addr uint64, n int, v uint64) *Fault {
	off := addr - m.base
	// Both fast paths still run stampExec after the write (one counter
	// load in the common no-W+X case): gating it on the permission
	// word loaded *before* the write would drop the stamp when a
	// concurrent Map made the page executable in between.
	if n == 8 {
		if pg, ok := m.inOnePage(off, 8); ok {
			if Perm(m.perms[pg].Load())&PermW != 0 {
				b := m.data[off : off+8]
				b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
				b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
				m.stampExec(addr, n)
				return nil
			}
		}
	} else if n == 1 {
		if pg, ok := m.inOnePage(off, 1); ok {
			if Perm(m.perms[pg].Load())&PermW != 0 {
				m.data[off] = byte(v)
				m.stampExec(addr, n)
				return nil
			}
		}
	}
	// Slow path: cross-page accesses and fault materialization.
	if f := m.check(addr, n, AccessWrite); f != nil {
		return f
	}
	if n == 1 {
		m.data[off] = byte(v)
	} else {
		b := m.data[off : off+8]
		b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
	}
	m.stampExec(addr, n)
	return nil
}

// Fetch returns a read-only view of [addr, addr+n) after checking execute
// permission, for instruction decode.
func (m *Paged) Fetch(addr uint64, n int) ([]byte, *Fault) {
	off := addr - m.base
	if n > 0 {
		if pg, ok := m.inOnePage(off, uint64(n)); ok && Perm(m.perms[pg].Load())&PermX != 0 {
			return m.data[off : off+uint64(n)], nil
		}
	}
	if f := m.check(addr, n, AccessExec); f != nil {
		return nil, f
	}
	return m.data[off : off+uint64(n)], nil
}

// ReadAt copies n bytes at addr into a fresh slice, checking read
// permission. It is intended for user-visible reads done on a process's
// behalf (e.g. the LibOS copying a syscall buffer).
func (m *Paged) ReadAt(addr uint64, n int) ([]byte, *Fault) {
	if f := m.check(addr, n, AccessRead); f != nil {
		return nil, f
	}
	out := make([]byte, n)
	copy(out, m.data[addr-m.base:])
	return out, nil
}

// WriteAt copies b to addr, checking write permission.
func (m *Paged) WriteAt(addr uint64, b []byte) *Fault {
	if len(b) == 0 {
		return nil
	}
	if f := m.check(addr, len(b), AccessWrite); f != nil {
		return f
	}
	copy(m.data[addr-m.base:], b)
	m.stampExec(addr, len(b))
	return nil
}

// View is a borrowed slice of guest memory: B aliases the backing store
// directly, so reads and writes through it touch the guest's bytes with
// no staging copy. The loan is permission-checked at creation and
// generation-stamped: any remap (Map), trusted write (WriteDirect), or
// exec-page store landing on the span after the loan was taken raises
// the span's generation above the loan's snapshot, and Revoked reports
// it. Plain data stores do not revoke a loan — they are exactly the
// traffic loans exist to carry.
//
// Lifetime rules (the "loan protocol"):
//
//   - A loan is only as fresh as its last Revoked check. Holders must
//     re-check at every commit point — in particular after any operation
//     that can run guest code or another syscall (park/resume
//     boundaries), since those may remap the span.
//   - Writers fill B and then call CommitWrite, which preserves the
//     write-then-stamp ordering WriteAt uses (bytes first, then the
//     exec-page stamp), so the SMC invalidation contract is identical
//     whether a page is written through WriteAt or through a loan.
//   - A revoked loan's bytes must not be interpreted: the mapping they
//     were checked under is gone. Callers surface EFAULT or re-take the
//     loan.
//
// Revocation is checked against the same per-page stamps the
// translation caches use; like them, a loan validated concurrently with
// an in-flight stamp may see the revocation one check later. Syscall
// paths take and commit loans from the SIP's own execution context, so
// remaps they can race are their own and strictly ordered.
type View struct {
	// B is the borrowed span, aliasing guest memory. Its capacity is
	// clipped to the loan so an append cannot scribble past it.
	B []byte

	m    *Paged
	addr uint64
	gen  uint64
}

// ViewBytes lends out [addr, addr+n) as a View after checking the given
// access kind on every page the span overlaps. The returned slice
// aliases guest memory — this is the zero-copy entry point syscalls use
// to read or write user buffers in place instead of staging through
// temp copies. A zero-length span yields an empty, never-revoked loan.
func (m *Paged) ViewBytes(addr uint64, n int, access Access) (View, *Fault) {
	if n <= 0 {
		return View{}, nil
	}
	// Snapshot the generation BEFORE the permission check: a Map racing
	// the check publishes its permission words first and stamps after,
	// so whichever permissions the check observed, the remap's stamp is
	// above this snapshot and Revoked will report it.
	gen := m.GenerationOf(addr, n)
	if f := m.check(addr, n, access); f != nil {
		return View{}, f
	}
	off := addr - m.base
	return View{
		B:    m.data[off : off+uint64(n) : off+uint64(n)],
		m:    m,
		addr: addr,
		gen:  gen,
	}, nil
}

// Revoked reports whether the loan has been invalidated: some page of
// the span carries a mutation stamp above the loan's snapshot, meaning
// the span was remapped (or trusted-written, or hit by an exec-page
// store) after the loan was taken. Plain data stores never revoke.
func (v *View) Revoked() bool {
	if v.m == nil {
		return false
	}
	return v.m.GenerationOf(v.addr, len(v.B)) > v.gen
}

// CommitWrite publishes the first n bytes written through a write loan:
// it re-validates the loan and then stamps any executable pages in the
// written prefix, exactly as WriteAt would (bytes were already stored
// through B — write-then-stamp holds). It reports false, without
// stamping, if the loan was revoked; the caller must then treat the
// write as faulted rather than interpret bytes under a dead mapping.
func (v *View) CommitWrite(n int) bool {
	if v.Revoked() {
		return false
	}
	if v.m != nil && n > 0 {
		if n > len(v.B) {
			n = len(v.B)
		}
		v.m.stampExec(v.addr, n)
	}
	return true
}

// ReadDirect returns a view of [addr, addr+n) with no permission checks.
// It models trusted in-enclave code (the LibOS) touching its own memory
// and must never be reachable from sandboxed user code.
func (m *Paged) ReadDirect(addr uint64, n int) ([]byte, error) {
	if !m.Contains(addr, n) {
		return nil, fmt.Errorf("%w: direct read [%#x,+%d)", ErrRange, addr, n)
	}
	return m.data[addr-m.base : addr-m.base+uint64(n)], nil
}

// WriteDirect writes b at addr with no permission checks (trusted loader
// and LibOS writes) and bumps the generation of the pages written.
func (m *Paged) WriteDirect(addr uint64, b []byte) error {
	if !m.Contains(addr, len(b)) {
		return fmt.Errorf("%w: direct write [%#x,+%d)", ErrRange, addr, len(b))
	}
	if len(b) == 0 {
		return nil
	}
	copy(m.data[addr-m.base:], b)
	m.stamp(m.pageIndex(addr), m.pageIndex(addr+uint64(len(b))-1))
	return nil
}
