package mem

import (
	"sync"
	"testing"
	"testing/quick"
)

func newTest(t *testing.T) *Paged {
	t.Helper()
	m := NewPaged(0x10000, 16*PageSize)
	if err := m.Map(0x10000, 4*PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := m.Map(0x10000+8*PageSize, 2*PageSize, PermRX); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLoadStoreRoundTrip(t *testing.T) {
	m := newTest(t)
	if f := m.Store(0x10008, 8, 0xDEADBEEFCAFEF00D); f != nil {
		t.Fatal(f)
	}
	v, f := m.Load(0x10008, 8)
	if f != nil || v != 0xDEADBEEFCAFEF00D {
		t.Fatalf("load = %#x, %v", v, f)
	}
	if f := m.Store(0x10010, 1, 0xAB); f != nil {
		t.Fatal(f)
	}
	v, f = m.Load(0x10010, 1)
	if f != nil || v != 0xAB {
		t.Fatalf("byte load = %#x, %v", v, f)
	}
}

func TestUnmappedFaults(t *testing.T) {
	m := newTest(t)
	// Page 4 is unmapped (a guard region, in MMDSFI terms).
	addr := m.Base() + 4*PageSize
	if _, f := m.Load(addr, 8); f == nil || !f.Unmapped {
		t.Fatalf("load from unmapped page: fault = %v", f)
	}
	if f := m.Store(addr, 8, 1); f == nil || !f.Unmapped {
		t.Fatalf("store to unmapped page: fault = %v", f)
	}
	if _, f := m.Fetch(addr, 1); f == nil || !f.Unmapped {
		t.Fatalf("fetch from unmapped page: fault = %v", f)
	}
}

func TestPermissionFaults(t *testing.T) {
	m := newTest(t)
	code := m.Base() + 8*PageSize // RX

	// NX data: fetching from an RW page faults.
	if _, f := m.Fetch(m.Base(), 1); f == nil || f.Access != AccessExec {
		t.Fatalf("fetch from rw page: fault = %v", f)
	}
	// Read-only code: writing an RX page faults.
	f := m.Store(code, 8, 1)
	if f == nil || f.Access != AccessWrite {
		t.Fatalf("store to rx page: fault = %v", f)
	}
	if f.Unmapped {
		t.Fatal("permission fault misreported as unmapped")
	}
	// Fetch from RX succeeds.
	if _, f := m.Fetch(code, 8); f != nil {
		t.Fatalf("fetch from rx page: %v", f)
	}
}

func TestCrossPageAccessAtomicity(t *testing.T) {
	m := newTest(t)
	// An 8-byte store straddling mapped page 3 and unmapped page 4
	// must fault and write nothing.
	addr := m.Base() + 4*PageSize - 4
	before, _ := m.ReadDirect(addr, 4)
	orig := append([]byte(nil), before...)
	if f := m.Store(addr, 8, ^uint64(0)); f == nil {
		t.Fatal("straddling store should fault")
	}
	after, _ := m.ReadDirect(addr, 4)
	for i := range orig {
		if after[i] != orig[i] {
			t.Fatal("faulting store wrote partial data")
		}
	}
}

func TestOutOfRange(t *testing.T) {
	m := newTest(t)
	if _, f := m.Load(m.Limit(), 8); f == nil {
		t.Fatal("load beyond limit should fault")
	}
	if _, f := m.Load(m.Base()-8, 8); f == nil {
		t.Fatal("load below base should fault")
	}
	// Wraparound: addr+n overflows.
	if _, f := m.Load(^uint64(0)-3, 8); f == nil {
		t.Fatal("wrapping access should fault")
	}
	if _, err := m.ReadDirect(m.Limit()-4, 8); err == nil {
		t.Fatal("direct read beyond limit should error")
	}
}

func TestGenerationBumps(t *testing.T) {
	m := newTest(t)
	g0 := m.Generation()
	if err := m.WriteDirect(m.Base(), []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if m.Generation() == g0 {
		t.Fatal("WriteDirect should bump generation")
	}
	g1 := m.Generation()
	if err := m.Map(m.Base(), PageSize, PermR); err != nil {
		t.Fatal(err)
	}
	if m.Generation() == g1 {
		t.Fatal("Map should bump generation")
	}
	// Untrusted stores to plain data pages do not bump the generation:
	// they cannot change executable bytes.
	g2 := m.Generation()
	if f := m.Store(m.Base()+PageSize, 8, 7); f != nil {
		t.Fatal(f)
	}
	if m.Generation() != g2 {
		t.Fatal("Store to a data page should not bump generation")
	}
	// A store through a writable+executable mapping is self-modifying
	// code and must bump the generation.
	if err := m.Map(m.Base()+10*PageSize, PageSize, PermRWX); err != nil {
		t.Fatal(err)
	}
	g3 := m.Generation()
	if f := m.Store(m.Base()+10*PageSize, 8, 7); f != nil {
		t.Fatal(f)
	}
	if m.Generation() == g3 {
		t.Fatal("Store to a writable+executable page should bump generation")
	}
}

func TestGenerationOfPageGranular(t *testing.T) {
	m := newTest(t) // pages 0-3 RW (data), pages 8-9 RX (code)
	data := m.Base()
	code := m.Base() + 8*PageSize

	gCode := m.GenerationOf(code, 2*PageSize)
	gData := m.GenerationOf(data, PageSize)

	// A trusted write to a data page advances that page's generation
	// but leaves the code span untouched.
	if err := m.WriteDirect(data, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if got := m.GenerationOf(code, 2*PageSize); got != gCode {
		t.Fatalf("code span generation moved on data write: %d -> %d", gCode, got)
	}
	if got := m.GenerationOf(data, PageSize); got == gData {
		t.Fatal("data span generation did not move on data write")
	}

	// Untrusted stores to data pages move no generation at all.
	gCode = m.GenerationOf(code, 2*PageSize)
	gData = m.GenerationOf(data, PageSize)
	if f := m.Store(data+8, 8, 42); f != nil {
		t.Fatal(f)
	}
	if m.GenerationOf(data, PageSize) != gData || m.GenerationOf(code, 2*PageSize) != gCode {
		t.Fatal("untrusted data store moved a generation")
	}

	// Remapping the code span advances it.
	if err := m.Map(code, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	if got := m.GenerationOf(code, 2*PageSize); got == gCode {
		t.Fatal("code span generation did not move on remap")
	}

	// A WriteAt through a writable+executable page advances it.
	if err := m.Map(m.Base()+10*PageSize, PageSize, PermRWX); err != nil {
		t.Fatal(err)
	}
	rwx := m.Base() + 10*PageSize
	gRWX := m.GenerationOf(rwx, PageSize)
	if f := m.WriteAt(rwx, []byte{0xCC}); f != nil {
		t.Fatal(f)
	}
	if got := m.GenerationOf(rwx, PageSize); got == gRWX {
		t.Fatal("rwx span generation did not move on WriteAt")
	}

	// Degenerate spans report zero.
	if got := m.GenerationOf(m.Base(), 0); got != 0 {
		t.Fatalf("empty span generation = %d, want 0", got)
	}
	if got := m.GenerationOf(m.Limit(), 8); got != 0 {
		t.Fatalf("out-of-range span generation = %d, want 0", got)
	}
}

func TestConcurrentMapStoreRace(t *testing.T) {
	// Regression test (run under -race): SIP harts share a Paged with
	// the LibOS, so a hart's Store (which reads page permissions in its
	// check and in stampExec) can race a concurrent Map rewriting those
	// permissions. Page permissions must therefore be atomically
	// accessed. The Map flips a page between RW and RWX so both the
	// stampExec fast path (wx == 0) and the per-page X scan race it.
	m := NewPaged(0, 8*PageSize)
	if err := m.Map(0, 8*PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	const iters = 2000
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			perm := PermRW
			if i%2 == 0 {
				perm = PermRWX
			}
			if err := m.Map(2*PageSize, PageSize, perm); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			// Store into the page being remapped: permission checks and
			// exec stamping race the Map. (The data bytes themselves are
			// only touched by this goroutine.)
			if f := m.Store(2*PageSize+64, 8, uint64(i)); f != nil {
				t.Errorf("store: %v", f)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			// An unrelated data page: exercises the single-page fast
			// paths while the mapping mutates elsewhere.
			if f := m.Store(4*PageSize, 8, uint64(i)); f != nil {
				t.Errorf("store: %v", f)
				return
			}
			if _, f := m.Load(4*PageSize, 8); f != nil {
				t.Errorf("load: %v", f)
				return
			}
		}
	}()
	wg.Wait()
}

func TestWXCounterTracksMappings(t *testing.T) {
	// The stampExec fast path depends on wx counting exactly the
	// writable+executable pages through arbitrary remap sequences.
	m := NewPaged(0, 8*PageSize)
	check := func(want int64, when string) {
		t.Helper()
		if got := m.wx.Load(); got != want {
			t.Fatalf("%s: wx = %d, want %d", when, got, want)
		}
	}
	check(0, "fresh")
	if err := m.Map(0, 2*PageSize, PermRWX); err != nil {
		t.Fatal(err)
	}
	check(2, "map 2 pages rwx")
	if err := m.Map(0, 2*PageSize, PermRWX); err != nil {
		t.Fatal(err)
	}
	check(2, "idempotent remap rwx")
	if err := m.Map(PageSize, PageSize, PermRX); err != nil {
		t.Fatal(err)
	}
	check(1, "downgrade one page to rx")
	if err := m.Map(0, 4*PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	check(0, "downgrade all to rw")

	// With no W+X page, a store must not bump any generation even when
	// an executable (but read-only) page exists.
	if err := m.Map(6*PageSize, PageSize, PermRX); err != nil {
		t.Fatal(err)
	}
	g := m.Generation()
	if f := m.Store(0, 8, 1); f != nil {
		t.Fatal(f)
	}
	if m.Generation() != g {
		t.Fatal("store with wx == 0 bumped the generation")
	}
}

func TestSinglePageFastPathFaults(t *testing.T) {
	// The fast paths must fall back to full fault materialization for
	// every non-trivial case: unmapped pages, permission violations,
	// page-straddling accesses, and out-of-range addresses.
	m := newTest(t) // pages 0-3 RW, pages 8-9 RX
	if f := m.Store(m.Base()+5*PageSize, 8, 1); f == nil || !f.Unmapped {
		t.Fatalf("store to unmapped: fault = %v", f)
	}
	if _, f := m.Load(m.Base()+5*PageSize, 1); f == nil || !f.Unmapped {
		t.Fatalf("byte load from unmapped: fault = %v", f)
	}
	if f := m.Store(m.Base()+8*PageSize, 1, 1); f == nil || f.Access != AccessWrite {
		t.Fatalf("store to rx: fault = %v", f)
	}
	if _, f := m.Fetch(m.Base(), 4); f == nil || f.Access != AccessExec {
		t.Fatalf("fetch from rw: fault = %v", f)
	}
	// A straddling load across two mapped RW pages succeeds via the
	// slow path.
	if f := m.Store(m.Base()+PageSize-4, 8, 0x1122334455667788); f != nil {
		t.Fatal(f)
	}
	v, f := m.Load(m.Base()+PageSize-4, 8)
	if f != nil || v != 0x1122334455667788 {
		t.Fatalf("straddling load = %#x, %v", v, f)
	}
	// A fetch straddling the RX pages succeeds via the slow path.
	if _, f := m.Fetch(m.Base()+9*PageSize-2, 4); f != nil {
		t.Fatalf("straddling fetch: %v", f)
	}
}

func TestReadWriteAt(t *testing.T) {
	m := newTest(t)
	msg := []byte("hello, enclave")
	if f := m.WriteAt(m.Base()+100, msg); f != nil {
		t.Fatal(f)
	}
	got, f := m.ReadAt(m.Base()+100, len(msg))
	if f != nil || string(got) != string(msg) {
		t.Fatalf("ReadAt = %q, %v", got, f)
	}
}

func TestLoadStoreQuick(t *testing.T) {
	m := NewPaged(0, 8*PageSize)
	if err := m.Map(0, 8*PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	// Property: a store followed by a load at the same address returns
	// the stored value (within the mapped region).
	prop := func(off uint32, v uint64) bool {
		addr := uint64(off) % (8*PageSize - 8)
		if f := m.Store(addr, 8, v); f != nil {
			return false
		}
		got, f := m.Load(addr, 8)
		return f == nil && got == v
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpansCurrent(t *testing.T) {
	m := newTest(t) // pages 0-3 RW (data), pages 8-9 RX (code)
	code := m.Base() + 8*PageSize
	data := m.Base()

	spans := []Span{
		{Addr: code, N: 20, Gen: m.GenerationOf(code, 20)},
		{Addr: code + PageSize, N: 40, Gen: m.GenerationOf(code+PageSize, 40)},
	}
	if !m.SpansCurrent(spans) {
		t.Fatal("fresh spans not current")
	}

	// Mutations outside every span leave them current.
	if err := m.WriteDirect(data, []byte{1}); err != nil {
		t.Fatal(err)
	}
	m.BumpGeneration()
	if !m.SpansCurrent(spans) {
		t.Fatal("unrelated mutation invalidated spans")
	}

	// A mutation under ANY span invalidates the whole set — the unit of
	// validity for a multi-block translation.
	if err := m.WriteDirect(code+PageSize, []byte{0x90}); err != nil {
		t.Fatal(err)
	}
	if m.SpansCurrent(spans) {
		t.Fatal("stale span reported current")
	}
	// Re-snapshotting the stale span restores currency.
	spans[1].Gen = m.GenerationOf(spans[1].Addr, spans[1].N)
	if !m.SpansCurrent(spans) {
		t.Fatal("re-snapshotted spans not current")
	}

	// A remap (even permission-identical) under a span invalidates it.
	if err := m.Map(code, PageSize, PermRX); err != nil {
		t.Fatal(err)
	}
	if m.SpansCurrent(spans) {
		t.Fatal("remapped span reported current")
	}
}
