package workloads

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/libos"
	"repro/internal/ulib"
)

// FS benchmark program builders (the fsbench experiment): sequential
// and random file I/O and an open/stat metadata storm, all running as
// real SIPs so the measurements include the syscall spine and (for
// image-backed paths) the union/copy-up/Merkle-verify machinery.

// BuildSeqFileIO builds a sequential reader (write=false) or writer
// (write=true) over total bytes in chunks of buf. Every transfer must
// move the full buffer; anything short exits 1.
func BuildSeqFileIO(path string, total, buf int, write bool) (*asm.Program, error) {
	if total%buf != 0 {
		return nil, fmt.Errorf("workloads: total %d not a multiple of buf %d", total, buf)
	}
	b := asm.NewBuilder()
	b.String("path", path)
	b.Zero("iobuf", buf)
	b.Entry("_start")
	ulib.Prologue(b)
	flags := int64(libos.ORdOnly)
	if write {
		flags = libos.ORdWr | libos.OCreate | libos.OTrunc
	}
	ulib.OpenPath(b, "path", int64(len(path)), flags)
	b.MovRR(isa.R7, isa.R0)
	b.CmpI(isa.R7, 0)
	b.Jl("fail")
	b.MovRI(isa.R8, int64(total/buf))
	b.Label("loop")
	b.MovRR(isa.R1, isa.R7)
	b.LeaData(isa.R2, "iobuf")
	b.MovRI(isa.R3, int64(buf))
	if write {
		ulib.Syscall(b, libos.SysWrite)
	} else {
		ulib.Syscall(b, libos.SysRead)
	}
	b.CmpI(isa.R0, int32(buf))
	b.Jne("fail")
	b.SubI(isa.R8, 1)
	b.CmpI(isa.R8, 0)
	b.Jg("loop")
	ulib.Close(b, isa.R7)
	ulib.Exit(b, 0)
	b.Label("fail")
	b.Nop()
	ulib.Exit(b, 1)
	return b.Finish()
}

// BuildRandFileIO builds a random-access reader (write=false) or writer
// over a file of chunks×buf bytes: iters operations at LCG-derived
// chunk offsets via lseek. chunks must be a power of two.
func BuildRandFileIO(path string, chunks, buf, iters int, write bool) (*asm.Program, error) {
	if chunks&(chunks-1) != 0 || chunks == 0 {
		return nil, fmt.Errorf("workloads: chunks %d not a power of two", chunks)
	}
	b := asm.NewBuilder()
	b.String("path", path)
	b.Zero("iobuf", buf)
	b.Entry("_start")
	ulib.Prologue(b)
	flags := int64(libos.ORdOnly)
	if write {
		flags = libos.ORdWr
	}
	ulib.OpenPath(b, "path", int64(len(path)), flags)
	b.MovRR(isa.R7, isa.R0)
	b.CmpI(isa.R7, 0)
	b.Jl("fail")
	b.MovRI(isa.R8, int64(iters))
	b.MovRI(isa.R9, 88172645463325252) // LCG state
	b.Label("loop")
	// r9 = r9*1103515245 + 12345; chunk = (r9 >> 8) & (chunks-1)
	b.MulI(isa.R9, 1103515245)
	b.AddI(isa.R9, 12345)
	b.MovRR(isa.R6, isa.R9)
	b.ShrI(isa.R6, 8)
	b.AndI(isa.R6, int32(chunks-1))
	b.MulI(isa.R6, int32(buf))
	// lseek(fd, off, SET)
	b.MovRR(isa.R1, isa.R7)
	b.MovRR(isa.R2, isa.R6)
	b.MovRI(isa.R3, libos.SeekSet)
	ulib.Syscall(b, libos.SysLseek)
	// read/write(fd, iobuf, buf)
	b.MovRR(isa.R1, isa.R7)
	b.LeaData(isa.R2, "iobuf")
	b.MovRI(isa.R3, int64(buf))
	if write {
		ulib.Syscall(b, libos.SysWrite)
	} else {
		ulib.Syscall(b, libos.SysRead)
	}
	b.CmpI(isa.R0, int32(buf))
	b.Jne("fail")
	b.SubI(isa.R8, 1)
	b.CmpI(isa.R8, 0)
	b.Jg("loop")
	ulib.Close(b, isa.R7)
	ulib.Exit(b, 0)
	b.Label("fail")
	b.Nop()
	ulib.Exit(b, 1)
	return b.Finish()
}

// BuildMetaStorm builds the open/stat metadata storm: iters rounds, each
// opening+closing and statting every path. Any failure exits 1. Total
// metadata ops = iters × len(paths) × 2.
func BuildMetaStorm(paths []string, iters int) (*asm.Program, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("workloads: no paths")
	}
	b := asm.NewBuilder()
	for i, p := range paths {
		b.String(fmt.Sprintf("p%d", i), p)
	}
	b.Zero("statbuf", 16)
	b.Entry("_start")
	ulib.Prologue(b)
	b.MovRI(isa.R9, int64(iters))
	b.Label("round")
	for i, p := range paths {
		sym := fmt.Sprintf("p%d", i)
		ulib.OpenPath(b, sym, int64(len(p)), libos.ORdOnly)
		b.MovRR(isa.R7, isa.R0)
		b.CmpI(isa.R7, 0)
		b.Jl("fail")
		ulib.Close(b, isa.R7)
		ulib.StatPath(b, sym, int64(len(p)), "statbuf")
		b.CmpI(isa.R0, 0)
		b.Jne("fail")
	}
	b.SubI(isa.R9, 1)
	b.CmpI(isa.R9, 0)
	b.Jg("round")
	ulib.Exit(b, 0)
	b.Label("fail")
	b.Nop()
	ulib.Exit(b, 1)
	return b.Finish()
}
