package workloads

import (
	"testing"

	"repro/internal/libos"
)

// TestEventHTTPDServes: the epoll-based server answers the same protocol
// as the thread-per-connection one and stops cleanly via the propagating
// quit chain.
func TestEventHTTPDServes(t *testing.T) {
	const (
		port     = 8085
		workers  = 2
		requests = 32
	)
	k, err := NewOcclumKernel(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer k.Sys.OS.Shutdown()

	master, err := InstallEventHTTPD(k, port, workers)
	if err != nil {
		t.Fatal(err)
	}
	p, err := k.Spawn(master, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := RunHTTPBench(k, port, 4, requests)
	StopHTTPD(k, port, workers)
	if status := p.Wait(); status != 0 {
		t.Fatalf("master status = %d", status)
	}
	if res.Failed != 0 {
		t.Fatalf("failed requests: %d/%d", res.Failed, res.Requests)
	}
	if res.Bytes != int64(requests*ResponseSize) {
		t.Fatalf("bytes = %d, want %d", res.Bytes, requests*ResponseSize)
	}
	t.Logf("event httpd: %.0f req/s", res.Throughput())
}

// TestC10KSmoke is the CI acceptance smoke for readiness-driven I/O:
// 1000 concurrent connections against 8 event-loop workers on a 4-hart
// pool. The thread-per-connection server cannot exceed the hart count in
// concurrent service; the epoll server must hold every connection open
// at once and serve them all, with the blocking waits parking instead of
// pinning harts (asserted through the sched and netstat counters).
// CI runs this under -race.
func TestC10KSmoke(t *testing.T) {
	const (
		port    = 8095
		workers = 8
		harts   = 4
		conns   = 1000
		rounds  = 1
	)
	spec := DefaultSpec()
	spec.Domains = workers + 2
	spec.Harts = harts
	k, err := NewOcclumKernel(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer k.Sys.OS.Shutdown()

	master, err := InstallEventHTTPD(k, port, workers)
	if err != nil {
		t.Fatal(err)
	}
	p, err := k.Spawn(master, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	net0 := libos.NetStats()
	res := RunC10K(k, port, conns, rounds)
	StopHTTPD(k, port, workers)
	if status := p.Wait(); status != 0 {
		t.Fatalf("master status = %d", status)
	}
	if res.Failed != 0 {
		t.Fatalf("failed requests: %d/%d", res.Failed, res.Requests)
	}
	if res.Bytes != int64(res.Requests*ResponseSize) {
		t.Fatalf("bytes = %d, want %d", res.Bytes, res.Requests*ResponseSize)
	}

	snap := k.Sys.OS.Sched().Snapshot()
	if snap.Parks == 0 {
		t.Fatal("no parks recorded: blocking network waits are holding harts")
	}
	net := libos.NetStats().Sub(net0)
	if net.EpWaitParks == 0 {
		t.Fatal("epoll_wait never parked: the event loop is spinning on a hart")
	}
	if net.EAgains == 0 {
		t.Fatal("no EAGAINs: the nonblocking accept drain never ran dry")
	}
	t.Logf("c10k smoke: %d conns / %d harts: %.0f req/s, p50=%v p99=%v, parks=%d epwait-parks=%d accept-eagains=%d",
		conns, harts, res.Throughput(), res.P50, res.P99, snap.Parks, net.EpWaitParks, net.EAgains)
}
