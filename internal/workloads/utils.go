package workloads

import (
	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/libos"
	"repro/internal/ulib"
)

// The utility convention (the pipeline equivalent of stdin/stdout): every
// filter reads its input from fd 4 and writes its output to fd 5. The
// pipeline driver arranges fds 4/5 with dup2 before each spawn, the way a
// shell arranges fds 0/1.
//
// The conventional fds live above the dynamic allocation range so that a
// dup2 to them never collides with fds handed out by pipe2/open (the fd
// allocator advances past explicit dup2 targets).
const (
	// FilterIn is the input fd of pipeline filters.
	FilterIn = 60
	// FilterOut is the output fd of pipeline filters.
	FilterOut = 61
	// ListenFD is the conventional fd of an inherited listening socket.
	ListenFD = 62
)

const ioBufSize = 4096

// filterProgram builds the read→transform→write loop shared by all
// utilities. transform receives the builder positioned after a read that
// left the byte count in R7 and the buffer symbol "iobuf"; it must
// preserve R7 (the output length may be adjusted by writing R7).
func filterProgram(pad int, transform func(b *asm.Builder)) (*asm.Program, error) {
	b := asm.NewBuilder()
	b.Zero("iobuf", ioBufSize)
	if pad > 0 {
		b.Bytes("binpad", make([]byte, pad))
	}
	b.Entry("_start")
	ulib.Prologue(b)
	b.Label("rdloop")
	// n = read(FilterIn, iobuf, ioBufSize)
	b.MovRI(isa.R1, FilterIn)
	b.LeaData(isa.R2, "iobuf")
	b.MovRI(isa.R3, ioBufSize)
	ulib.Syscall(b, libos.SysRead)
	b.MovRR(isa.R7, isa.R0)
	b.CmpI(isa.R7, 0)
	b.Jle("done")
	if transform != nil {
		transform(b)
	}
	// write(FilterOut, iobuf, n)
	b.MovRI(isa.R1, FilterOut)
	b.LeaData(isa.R2, "iobuf")
	b.MovRR(isa.R3, isa.R7)
	ulib.Syscall(b, libos.SysWrite)
	b.Jmp("rdloop")
	b.Label("done")
	b.Nop()
	ulib.Exit(b, 0)
	return b.Finish()
}

// BuildCat builds the identity filter.
func BuildCat() (*asm.Program, error) {
	return filterProgram(0, nil)
}

// BuildOd builds an od-like byte transformer (xors every byte, standing
// in for the octal-dump transformation of the UnixBench fish script).
func BuildOd() (*asm.Program, error) {
	return filterProgram(0, func(b *asm.Builder) {
		// for i in 0..n-1: buf[i] ^= 0x55
		b.LeaData(isa.R4, "iobuf")
		b.MovRR(isa.R5, isa.R7)
		b.Label("odloop")
		b.CmpI(isa.R5, 0)
		b.Jle("oddone")
		b.LoadB(isa.R6, isa.Mem(isa.R4, 0))
		b.XorI(isa.R6, 0x55)
		b.StoreB(isa.Mem(isa.R4, 0), isa.R6)
		b.AddI(isa.R4, 1)
		b.SubI(isa.R5, 1)
		b.Jmp("odloop")
		b.Label("oddone")
		b.Nop()
	})
}

// BuildGrep builds a grep-like filter: it keeps only bytes ≥ 0x20,
// compacting the buffer in place (line filtering at byte granularity).
func BuildGrep() (*asm.Program, error) {
	return filterProgram(0, func(b *asm.Builder) {
		b.LeaData(isa.R4, "iobuf") // src cursor
		b.LeaData(isa.R8, "iobuf") // dst cursor
		b.MovRR(isa.R5, isa.R7)    // remaining
		b.MovRI(isa.R9, 0)         // kept
		b.Label("grloop")
		b.CmpI(isa.R5, 0)
		b.Jle("grdone")
		b.LoadB(isa.R6, isa.Mem(isa.R4, 0))
		b.CmpI(isa.R6, 0x20)
		b.Jl("grskip")
		b.StoreB(isa.Mem(isa.R8, 0), isa.R6)
		b.AddI(isa.R8, 1)
		b.AddI(isa.R9, 1)
		b.Label("grskip")
		b.AddI(isa.R4, 1)
		b.SubI(isa.R5, 1)
		b.Jmp("grloop")
		b.Label("grdone")
		b.MovRR(isa.R7, isa.R9) // new output length
	})
}

// BuildSort builds a sort-like filter: each chunk is counting-sorted by
// byte value (the byte-granular stand-in for UnixBench's sort stage).
func BuildSort() (*asm.Program, error) {
	b := asm.NewBuilder()
	b.Zero("iobuf", ioBufSize)
	b.Zero("counts", 256*8)
	b.Entry("_start")
	ulib.Prologue(b)
	b.Label("rdloop")
	b.MovRI(isa.R1, FilterIn)
	b.LeaData(isa.R2, "iobuf")
	b.MovRI(isa.R3, ioBufSize)
	ulib.Syscall(b, libos.SysRead)
	b.MovRR(isa.R7, isa.R0)
	b.CmpI(isa.R7, 0)
	b.Jle("done")

	// Zero the count table.
	b.LeaData(isa.R4, "counts")
	b.MovRI(isa.R5, 256)
	b.MovRI(isa.R6, 0)
	b.Label("zloop")
	b.Store(isa.Mem(isa.R4, 0), isa.R6)
	b.AddI(isa.R4, 8)
	b.SubI(isa.R5, 1)
	b.CmpI(isa.R5, 0)
	b.Jg("zloop")

	// Count byte values.
	b.LeaData(isa.R4, "iobuf")
	b.MovRR(isa.R5, isa.R7)
	b.Label("cloop")
	b.LoadB(isa.R6, isa.Mem(isa.R4, 0))
	b.ShlI(isa.R6, 3) // ×8
	b.LeaData(isa.R8, "counts")
	b.Add(isa.R8, isa.R6)
	b.Load(isa.R9, isa.Mem(isa.R8, 0))
	b.AddI(isa.R9, 1)
	b.Store(isa.Mem(isa.R8, 0), isa.R9)
	b.AddI(isa.R4, 1)
	b.SubI(isa.R5, 1)
	b.CmpI(isa.R5, 0)
	b.Jg("cloop")

	// Emit in order.
	b.LeaData(isa.R4, "iobuf") // output cursor
	b.MovRI(isa.R5, 0)         // byte value
	b.Label("eloop")
	b.MovRR(isa.R6, isa.R5)
	b.ShlI(isa.R6, 3)
	b.LeaData(isa.R8, "counts")
	b.Add(isa.R8, isa.R6)
	b.Load(isa.R9, isa.Mem(isa.R8, 0)) // count for value R5
	b.Label("emitval")
	b.CmpI(isa.R9, 0)
	b.Jle("nextval")
	b.StoreB(isa.Mem(isa.R4, 0), isa.R5)
	b.AddI(isa.R4, 1)
	b.SubI(isa.R9, 1)
	b.Jmp("emitval")
	b.Label("nextval")
	b.AddI(isa.R5, 1)
	b.CmpI(isa.R5, 256)
	b.Jl("eloop")

	// write(FilterOut, iobuf, n)
	b.MovRI(isa.R1, FilterOut)
	b.LeaData(isa.R2, "iobuf")
	b.MovRR(isa.R3, isa.R7)
	ulib.Syscall(b, libos.SysWrite)
	b.Jmp("rdloop")
	b.Label("done")
	b.Nop()
	ulib.Exit(b, 0)
	return b.Finish()
}

// BuildWc builds a wc-like sink: it counts input bytes and writes the
// 8-byte total at EOF.
func BuildWc() (*asm.Program, error) {
	b := asm.NewBuilder()
	b.Zero("iobuf", ioBufSize)
	b.Zero("total", 8)
	b.Entry("_start")
	ulib.Prologue(b)
	b.MovRI(isa.R9, 0)
	b.Label("rdloop")
	b.MovRI(isa.R1, FilterIn)
	b.LeaData(isa.R2, "iobuf")
	b.MovRI(isa.R3, ioBufSize)
	ulib.Syscall(b, libos.SysRead)
	b.CmpI(isa.R0, 0)
	b.Jle("done")
	b.Add(isa.R9, isa.R0)
	b.Jmp("rdloop")
	b.Label("done")
	b.StoreData("total", isa.R9)
	b.MovRI(isa.R1, FilterOut)
	b.LeaData(isa.R2, "total")
	b.MovRI(isa.R3, 8)
	ulib.Syscall(b, libos.SysWrite)
	ulib.Exit(b, 0)
	return b.Finish()
}

// BuildCompilerStage builds a GCC pipeline stage: a compute-heavy filter
// that performs `work` arithmetic passes over each input chunk before
// forwarding it. pad bytes of static data inflate the binary to realistic
// compiler sizes (cc1 is 14 MB in the paper's Figure 6a).
func BuildCompilerStage(work int, pad int) (*asm.Program, error) {
	return filterProgram(pad, func(b *asm.Builder) {
		b.MovRI(isa.R9, int64(work))
		b.Label("workpass")
		b.LeaData(isa.R4, "iobuf")
		b.MovRR(isa.R5, isa.R7)
		b.Label("wloop")
		b.CmpI(isa.R5, 8)
		b.Jl("wdone")
		b.Load(isa.R6, isa.Mem(isa.R4, 0))
		b.MulI(isa.R6, 31)
		b.AddI(isa.R6, 17)
		b.XorI(isa.R6, 0x5c5c5c)
		b.Store(isa.Mem(isa.R4, 0), isa.R6)
		b.AddI(isa.R4, 8)
		b.SubI(isa.R5, 8)
		b.Jmp("wloop")
		b.Label("wdone")
		b.SubI(isa.R9, 1)
		b.CmpI(isa.R9, 0)
		b.Jg("workpass")
	})
}
