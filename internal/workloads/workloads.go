// Package workloads builds the paper's application benchmarks — Fish
// (process-intensive shell pipelines), GCC (CPU-intensive multi-stage
// compilation) and Lighttpd (I/O-intensive web serving) — as OVM programs,
// and provides a uniform Kernel interface so the same workload runs
// unchanged on Occlum, on the EIP (Graphene-SGX-like) baseline and on the
// native-Linux baseline.
package workloads

import (
	"io"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/eip"
	"repro/internal/hostos"
	"repro/internal/libos"
	"repro/internal/linuxsim"
)

// Proc is a spawned process on any of the three systems.
type Proc interface {
	Wait() int
	PID() int
	Cycles() uint64
}

// Kernel abstracts the three systems under test.
type Kernel interface {
	// Name identifies the system in benchmark output.
	Name() string
	// InstallProgram compiles a program appropriately for this system
	// (instrumented+verified for Occlum, plain for the baselines) and
	// installs it at path.
	InstallProgram(path string, prog *asm.Program) error
	// WriteInput installs input data at path (at image-preparation
	// time; the EIP filesystem is read-only afterwards).
	WriteInput(path string, data []byte) error
	// Spawn starts a process with the given stdout.
	Spawn(path string, argv []string, stdout io.Writer) (Proc, error)
	// Host returns the loopback network substrate.
	Host() *hostos.Host
}

// --- Occlum adapter ----------------------------------------------------------

// OcclumKernel adapts a booted Occlum system.
type OcclumKernel struct {
	Sys *core.System
	TC  *core.Toolchain
}

// Name implements Kernel.
func (k *OcclumKernel) Name() string { return "Occlum" }

// InstallProgram compiles with full MMDSFI instrumentation, verifies,
// signs and installs.
func (k *OcclumKernel) InstallProgram(path string, prog *asm.Program) error {
	return k.Sys.Install(k.TC, path, path, prog)
}

// WriteInput writes to the encrypted filesystem.
func (k *OcclumKernel) WriteInput(path string, data []byte) error {
	return k.Sys.WriteFile(path, data)
}

// Spawn starts a SIP.
func (k *OcclumKernel) Spawn(path string, argv []string, stdout io.Writer) (Proc, error) {
	opt := libos.SpawnOpt{}
	if stdout != nil {
		opt.Stdout = libos.NewWriterFile(stdout)
	}
	return k.Sys.OS.Spawn(path, argv, opt)
}

// Host implements Kernel.
func (k *OcclumKernel) Host() *hostos.Host { return k.Sys.Host }

// --- Linux adapter -----------------------------------------------------------

// LinuxKernel adapts the native baseline.
type LinuxKernel struct {
	L  *linuxsim.Linux
	TC *core.Toolchain
}

// Name implements Kernel.
func (k *LinuxKernel) Name() string { return "Linux" }

// InstallProgram links without instrumentation (native execution).
func (k *LinuxKernel) InstallProgram(path string, prog *asm.Program) error {
	bin, err := k.TC.CompileUnverified(path, prog)
	if err != nil {
		return err
	}
	k.L.InstallBinary(path, bin)
	return nil
}

// WriteInput writes to the plaintext filesystem.
func (k *LinuxKernel) WriteInput(path string, data []byte) error {
	k.L.WriteFile(path, data)
	return nil
}

// Spawn starts a native process.
func (k *LinuxKernel) Spawn(path string, argv []string, stdout io.Writer) (Proc, error) {
	opt := linuxsim.SpawnOpt{}
	if stdout != nil {
		opt.Stdout = libos.NewWriterFile(stdout)
	}
	return k.L.Spawn(path, argv, opt)
}

// Host implements Kernel.
func (k *LinuxKernel) Host() *hostos.Host { return k.L.Host() }

// --- EIP (Graphene-SGX-like) adapter ------------------------------------------

// EIPKernel adapts the enclave-per-process baseline.
type EIPKernel struct {
	G  *eip.Graphene
	TC *core.Toolchain
}

// Name implements Kernel.
func (k *EIPKernel) Name() string { return "Graphene-SGX" }

// InstallProgram links without instrumentation (Graphene applies no SFI).
func (k *EIPKernel) InstallProgram(path string, prog *asm.Program) error {
	bin, err := k.TC.CompileUnverified(path, prog)
	if err != nil {
		return err
	}
	k.G.InstallBinary(path, bin)
	return nil
}

// WriteInput seals into the read-only protected FS.
func (k *EIPKernel) WriteInput(path string, data []byte) error {
	k.G.InstallFile(path, data)
	return nil
}

// Spawn starts an EIP (creating a fresh enclave).
func (k *EIPKernel) Spawn(path string, argv []string, stdout io.Writer) (Proc, error) {
	opt := eip.SpawnOpt{}
	if stdout != nil {
		opt.Stdout = libos.NewWriterFile(stdout)
	}
	return k.G.Spawn(path, argv, opt)
}

// Host implements Kernel.
func (k *EIPKernel) Host() *hostos.Host { return k.G.Host() }
