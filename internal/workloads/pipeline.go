package workloads

import (
	"fmt"
	"io"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/libos"
	"repro/internal/ulib"
)

// BuildPipelineDriver builds the shell-like driver program: it opens the
// input file, connects the stage programs with pipes (arranging fds 4/5
// with dup2 before each spawn, like a shell arranges 0/1), spawns every
// stage with spawn — not fork, per §3.3 — and waits for all of them. The
// final stage writes to the driver's stdout.
func BuildPipelineDriver(input string, stages []string) (*asm.Program, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("workloads: empty pipeline")
	}
	b := asm.NewBuilder()
	b.String("input", input)
	for i, s := range stages {
		b.String(fmt.Sprintf("stage%d", i), s)
	}
	b.Zero("pfds", 16)
	b.Entry("_start")
	ulib.Prologue(b)

	// fd4 ← input file
	ulib.OpenPath(b, "input", int64(len(input)), libos.ORdOnly)
	b.MovRR(isa.R6, isa.R0)
	b.MovRR(isa.R1, isa.R6)
	b.MovRI(isa.R2, FilterIn)
	ulib.Syscall(b, libos.SysDup2)
	ulib.Close(b, isa.R6)

	last := len(stages) - 1
	for i := range stages {
		if i < last {
			// pipe2; fd5 ← write end
			ulib.Pipe2(b, "pfds")
			b.LeaData(isa.R6, "pfds")
			b.Load(isa.R6, isa.Mem(isa.R6, 8))
			b.MovRR(isa.R1, isa.R6)
			b.MovRI(isa.R2, FilterOut)
			ulib.Syscall(b, libos.SysDup2)
			ulib.Close(b, isa.R6)
		} else {
			// fd5 ← stdout
			b.MovRI(isa.R1, 1)
			b.MovRI(isa.R2, FilterOut)
			ulib.Syscall(b, libos.SysDup2)
		}

		sym := fmt.Sprintf("stage%d", i)
		ulib.SpawnPath(b, sym, int64(len(stages[i])), "", 0)
		b.Push(isa.R0) // save pid

		if i < last {
			// fd4 ← read end (input of the next stage)
			b.LoadData(isa.R6, "pfds")
			b.MovRR(isa.R1, isa.R6)
			b.MovRI(isa.R2, FilterIn)
			ulib.Syscall(b, libos.SysDup2)
			ulib.Close(b, isa.R6)
		}
	}
	// Close the driver's pipe copies so EOF propagates, then wait.
	b.MovRI(isa.R1, FilterIn)
	ulib.Syscall(b, libos.SysClose)
	b.MovRI(isa.R1, FilterOut)
	ulib.Syscall(b, libos.SysClose)
	for range stages {
		b.Pop(isa.R6)
		ulib.Wait4(b, isa.R6)
	}
	ulib.Exit(b, 0)
	return b.Finish()
}

// FishStages is the UnixBench-style transformation pipeline of §9.1: data
// flows through od, grep, sort and a counting sink.
var FishStages = []string{"/bin/od", "/bin/grep", "/bin/sort", "/bin/wc"}

// InstallFish installs the fish workload (driver + utilities + input) on
// a kernel and returns the driver path.
func InstallFish(k Kernel, inputSize int) (string, error) {
	utils := []struct {
		path  string
		build func() (*asm.Program, error)
	}{
		{"/bin/od", BuildOd},
		{"/bin/grep", BuildGrep},
		{"/bin/sort", BuildSort},
		{"/bin/wc", BuildWc},
		{"/bin/cat", BuildCat},
	}
	for _, u := range utils {
		p, err := u.build()
		if err != nil {
			return "", fmt.Errorf("%s: %w", u.path, err)
		}
		if err := k.InstallProgram(u.path, p); err != nil {
			return "", fmt.Errorf("%s: %w", u.path, err)
		}
	}
	input := make([]byte, inputSize)
	for i := range input {
		input[i] = byte(i*31 + 7)
	}
	if err := k.WriteInput("/data/fish.in", input); err != nil {
		return "", err
	}
	driver, err := BuildPipelineDriver("/data/fish.in", FishStages)
	if err != nil {
		return "", err
	}
	if err := k.InstallProgram("/bin/fish", driver); err != nil {
		return "", err
	}
	return "/bin/fish", nil
}

// RunToCompletion spawns path and waits, returning the exit status.
func RunToCompletion(k Kernel, path string, argv []string, stdout io.Writer) (int, error) {
	p, err := k.Spawn(path, argv, stdout)
	if err != nil {
		return -1, err
	}
	return p.Wait(), nil
}

// GCCStage describes one stage of the compilation pipeline.
type GCCStage struct {
	Path string
	Work int // arithmetic passes per chunk
	Pad  int // static data inflating the binary size
}

// GCCStages models the paper's GCC: preprocessor, compiler (the huge
// cc1), assembler, linker. The compiler stage carries both the bulk of
// the compute and a large binary image.
var GCCStages = []GCCStage{
	{Path: "/bin/cpp", Work: 2, Pad: 256 << 10},
	{Path: "/bin/cc1", Work: 12, Pad: 12 << 20},
	{Path: "/bin/as", Work: 3, Pad: 512 << 10},
	{Path: "/bin/ld", Work: 2, Pad: 1 << 20},
}

// InstallGCC installs the compilation pipeline and a source input of the
// given size, returning the driver path.
func InstallGCC(k Kernel, name string, sourceSize int, stages []GCCStage) (string, error) {
	var paths []string
	for _, s := range stages {
		p, err := BuildCompilerStage(s.Work, s.Pad)
		if err != nil {
			return "", err
		}
		if err := k.InstallProgram(s.Path, p); err != nil {
			return "", err
		}
		paths = append(paths, s.Path)
	}
	src := make([]byte, sourceSize)
	for i := range src {
		src[i] = byte("int main(){}"[i%12])
	}
	in := "/data/" + name + ".c"
	if err := k.WriteInput(in, src); err != nil {
		return "", err
	}
	driver, err := BuildPipelineDriver(in, paths)
	if err != nil {
		return "", err
	}
	path := "/bin/gcc-" + name
	if err := k.InstallProgram(path, driver); err != nil {
		return "", err
	}
	return path, nil
}
