package workloads

import (
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/hostos"
	"repro/internal/libos"
	"repro/internal/ulib"
)

// TestC100KHeldOpen is the c100k timer-consolidation acceptance test:
// N connections held open on a 4-hart pool, every one carrying a live
// idle-reap deadline, while the host-timer population stays bounded by
// the hart count — the whole point of the per-hart timer wheels. Before
// the wheels, every armed deadline was its own host timer; at 100k
// held-open connections that is 100k host timers, at ≤1 per hart it is
// 4.
//
// CI runs the quick scale (2000 connections, still ~500x more deadlines
// than allowed host timers). Set OCCLUM_C100K=1 for the full 100k run
// recorded in EXPERIMENTS.md.
func TestC100KHeldOpen(t *testing.T) {
	const (
		port    = 8105
		workers = 8
		harts   = 4
	)
	conns := 2000
	if os.Getenv("OCCLUM_C100K") != "" {
		conns = 100000
	}
	spec := DefaultSpec()
	spec.Domains = workers + 2
	spec.Harts = harts
	// Long enough that nothing is reaped mid-test; the point is that
	// every accepted connection HOLDS an armed wheel deadline.
	spec.IdleTimeout = 10 * time.Minute
	k, err := NewOcclumKernel(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer k.Sys.OS.Shutdown()

	master, err := InstallEventHTTPD(k, port, workers)
	if err != nil {
		t.Fatal(err)
	}
	p, err := k.Spawn(master, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	net0 := libos.NetStats()

	// Connect storm: every connection dials, completes one request (so
	// it is accepted, epoll-registered and reap-armed), then is held.
	cs := make([]*hostos.Conn, conns)
	var wg sync.WaitGroup
	var connectFailed, requestFailed int
	var mu sync.Mutex
	for i := range cs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := dialConnRetry(k, port, 60*time.Second)
			if err != nil {
				mu.Lock()
				connectFailed++
				mu.Unlock()
				return
			}
			buf := make([]byte, 4096)
			if _, err := conn.Write([]byte("GET / HTTP/1.0\r\n\r\n")); err != nil {
				mu.Lock()
				requestFailed++
				mu.Unlock()
				conn.Close()
				return
			}
			for got := 0; got < ResponseSize; {
				n, err := conn.Read(buf)
				got += n
				if err != nil {
					mu.Lock()
					requestFailed++
					mu.Unlock()
					conn.Close()
					return
				}
			}
			cs[i] = conn
		}(i)
	}
	wg.Wait()
	if connectFailed != 0 || requestFailed != 0 {
		t.Fatalf("connect storm: %d dials and %d warmup requests failed", connectFailed, requestFailed)
	}

	// The acceptance assertion: conns live deadlines, ≤1 host timer per
	// hart. Idle reaping for every connection plus any poll/epoll
	// timeouts all multiplex onto the per-hart wheels' single alarms.
	net := libos.NetStats().Sub(net0)
	if net.WheelArms < uint64(conns) {
		t.Fatalf("wheel arms = %d, want ≥ %d (one idle deadline per held connection)",
			net.WheelArms, conns)
	}
	active := k.Host().ActiveTimers()
	if active > harts {
		t.Fatalf("host timers = %d with %d connections held, want ≤ %d (one per hart)",
			active, conns, harts)
	}
	t.Logf("c100k: %d conns held, %d wheel deadlines armed, %d host timers (%d harts)",
		conns, net.WheelArms, active, harts)

	for _, c := range cs {
		if c != nil {
			c.Close()
		}
	}
	StopHTTPD(k, port, workers)
	if status := p.Wait(); status != 0 {
		t.Fatalf("master status = %d", status)
	}
}

// TestSlowlorisReap: stalled connections (partial request, then
// silence) are collected by the wheel-driven idle reaper while
// legitimate clients keep getting served with bounded tail latency and
// bounded per-connection memory. CI runs this under -race.
func TestSlowlorisReap(t *testing.T) {
	const (
		port    = 8106
		workers = 8
		harts   = 4
	)
	spec := DefaultSpec()
	spec.Domains = workers + 2
	spec.Harts = harts
	spec.IdleTimeout = 150 * time.Millisecond
	k, err := NewOcclumKernel(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer k.Sys.OS.Shutdown()

	master, err := InstallEventHTTPD(k, port, workers)
	if err != nil {
		t.Fatal(err)
	}
	p, err := k.Spawn(master, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	res := RunSlowloris(k, port, SlowlorisSpec{
		Attackers:    200,
		PartialBytes: 8,
		Hold:         30 * time.Second,
		Legit:        8,
		LegitRounds:  15,
	})
	StopHTTPD(k, port, workers)
	if status := p.Wait(); status != 0 {
		t.Fatalf("master status = %d", status)
	}

	if res.Net.Reaps == 0 {
		t.Fatal("idle reaper never fired: stalled connections were not collected")
	}
	if res.ServerClosed < res.Connected {
		t.Fatalf("server closed %d of %d stalled connections within hold",
			res.ServerClosed, res.Connected)
	}
	if res.LegitFailed != 0 {
		t.Fatalf("legit clients failed %d/%d requests under attack",
			res.LegitFailed, res.LegitRequests)
	}
	if res.LegitP99 > 10*time.Second {
		t.Fatalf("legit p99 = %v under attack, want bounded", res.LegitP99)
	}
	// Each stalled connection sent 8 bytes: the attack must not pin
	// stream-capacity-sized buffers. 32 KiB per connection is an order
	// of magnitude under the 256 KiB per-direction cap.
	if bound := res.Connected * 32 << 10; res.AttackerBufPeak > bound {
		t.Fatalf("attackers pinned %d buffered bytes, want ≤ %d", res.AttackerBufPeak, bound)
	}
	t.Logf("slowloris reap: %d/%d stalled conns server-closed (reaps=%d), legit p50=%v p99=%v (retries=%d), attacker buf peak=%dB",
		res.ServerClosed, res.Connected, res.Net.Reaps, res.LegitP50, res.LegitP99, res.LegitRetries, res.AttackerBufPeak)
}

// TestSlowlorisShed: a connect storm arriving while the run queues are
// saturated with CPU-bound SIPs is shed at the accept boundary
// (accept-and-close) instead of piling accepted-but-unserviceable
// connections onto the event loops — and once the saturation clears,
// admission resumes and service is intact.
//
// The threshold has to clear the accept wake herd: every dial wakes all
// parked workers, so up to workers-1 SIPs sit queued at any accept even
// on an idle server. Threshold 12 > 7 admits under that baseline;
// 24 preempting spinners on 2 harts push the queue well past it. CI
// runs this under -race.
func TestSlowlorisShed(t *testing.T) {
	const (
		port     = 8107
		workers  = 8
		harts    = 2
		spinners = 24
		shedAt   = 12
	)
	spec := DefaultSpec()
	spec.Domains = workers + 2 + spinners
	spec.Harts = harts
	spec.ShedThreshold = shedAt
	k, err := NewOcclumKernel(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer k.Sys.OS.Shutdown()

	master, err := InstallEventHTTPD(k, port, workers)
	if err != nil {
		t.Fatal(err)
	}
	spin := asm.NewBuilder()
	spin.Entry("_start")
	ulib.Prologue(spin)
	spin.Label("forever")
	spin.Jmp("forever")
	spinProg, err := spin.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := k.InstallProgram("/bin/spin", spinProg); err != nil {
		t.Fatal(err)
	}
	p, err := k.Spawn(master, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Unsaturated baseline: the wake herd alone must not trip the
	// threshold — connections are admitted and served.
	if res := RunHTTPBench(k, port, 2, 8); res.Failed != 0 {
		t.Fatalf("unsaturated baseline: %d/%d requests failed", res.Failed, res.Requests)
	}

	// Saturate: CPU-bound SIPs outnumbering harts 12x keep the run
	// queues far above the threshold (preemption requeues them
	// constantly).
	spinProcs := make([]Proc, spinners)
	for i := range spinProcs {
		sp, err := k.Spawn("/bin/spin", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		spinProcs[i] = sp
	}
	time.Sleep(50 * time.Millisecond)

	res := RunSlowloris(k, port, SlowlorisSpec{
		Attackers: 300,
		Hold:      10 * time.Second,
	})
	if res.Net.Sheds == 0 {
		t.Fatal("no connections shed under run-queue saturation")
	}

	// Clear the saturation; admission must resume.
	for _, sp := range spinProcs {
		if err := k.Sys.OS.Kill(sp.PID(), libos.SIGTERM); err != nil {
			t.Fatal(err)
		}
	}
	for _, sp := range spinProcs {
		if status := sp.Wait(); status != 128+libos.SIGTERM {
			t.Fatalf("spinner status = %d, want %d", status, 128+libos.SIGTERM)
		}
	}
	after := RunHTTPBench(k, port, 4, 24)
	if after.Failed != 0 {
		t.Fatalf("post-shed service: %d/%d requests failed", after.Failed, after.Requests)
	}

	StopHTTPD(k, port, workers)
	if status := p.Wait(); status != 0 {
		t.Fatalf("master status = %d", status)
	}
	t.Logf("slowloris shed: sheds=%d over %d storm conns while saturated; service restored at %.0f req/s",
		res.Net.Sheds, res.Connected, after.Throughput())
}
