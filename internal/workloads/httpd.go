package workloads

import (
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/libos"
	"repro/internal/ulib"
)

// PageSize10K is the HTML page size served by the lighttpd workload
// (10 KB pages, as in §9.1).
const PageSize10K = 10 * 1024

// QuitRequest is the in-band shutdown request understood by HTTPD
// workers: a request whose first byte is 'Q' makes the accepting worker
// exit instead of serving the page. StopHTTPD sends one per worker.
const QuitRequest = "QUIT\r\n\r\n"

// BuildHTTPWorker builds a lighttpd worker: it accepts connections on
// the inherited listening socket (fd 62) and serves the 10 KB page until
// explicitly stopped — by a QuitRequest or by the listener closing.
// Workers no longer exit after a request quota, so one server instance
// survives any number of benchmark rounds.
func BuildHTTPWorker() (*asm.Program, error) {
	page := make([]byte, PageSize10K)
	copy(page, "<html>occlum</html>")
	b := asm.NewBuilder()
	b.Bytes("page", page)
	b.Zero("req", 128)
	b.Entry("_start")
	ulib.Prologue(b)
	b.Label("serve")
	// cfd = accept(ListenFD); a failed accept means the listener is
	// gone — stop serving.
	b.MovRI(isa.R1, ListenFD)
	ulib.Syscall(b, libos.SysAccept)
	b.MovRR(isa.R6, isa.R0)
	b.CmpI(isa.R6, 0)
	b.Jl("done")
	// read(cfd, req, 128)
	b.MovRR(isa.R1, isa.R6)
	b.LeaData(isa.R2, "req")
	b.MovRI(isa.R3, 128)
	ulib.Syscall(b, libos.SysRead)
	// A 'Q' request is the stop order.
	b.LeaData(isa.R8, "req")
	b.LoadB(isa.R7, isa.Mem(isa.R8, 0))
	b.CmpI(isa.R7, int32(QuitRequest[0]))
	b.Je("quit")
	// write(cfd, page, PageSize10K)
	b.MovRR(isa.R1, isa.R6)
	b.LeaData(isa.R2, "page")
	b.MovRI(isa.R3, PageSize10K)
	ulib.Syscall(b, libos.SysWrite)
	ulib.Close(b, isa.R6)
	b.Jmp("serve")
	b.Label("quit")
	b.Nop()
	ulib.Close(b, isa.R6)
	b.Label("done")
	b.Nop()
	ulib.Exit(b, 0)
	return b.Finish()
}

// BuildHTTPMaster builds the lighttpd master: it binds the listening
// socket, spawns the worker processes (which inherit the socket, as the
// paper's configuration does), and waits for them.
func BuildHTTPMaster(port uint16, workerPath string, workers int) (*asm.Program, error) {
	b := asm.NewBuilder()
	b.String("wpath", workerPath)
	b.Entry("_start")
	ulib.Prologue(b)
	// sfd = socket(); bind(sfd, port); listen(sfd); dup2(sfd, ListenFD)
	ulib.Syscall(b, libos.SysSocket)
	b.MovRR(isa.R6, isa.R0)
	b.MovRR(isa.R1, isa.R6)
	b.MovRI(isa.R2, int64(port))
	ulib.Syscall(b, libos.SysBind)
	b.MovRR(isa.R1, isa.R6)
	ulib.Syscall(b, libos.SysListen)
	b.MovRR(isa.R1, isa.R6)
	b.MovRI(isa.R2, ListenFD)
	ulib.Syscall(b, libos.SysDup2)
	ulib.Close(b, isa.R6)
	for i := 0; i < workers; i++ {
		ulib.SpawnPath(b, "wpath", int64(len(workerPath)), "", 0)
		b.Push(isa.R0)
	}
	for i := 0; i < workers; i++ {
		b.Pop(isa.R6)
		ulib.Wait4(b, isa.R6)
	}
	ulib.Exit(b, 0)
	return b.Finish()
}

// HTTPBenchResult reports a load-generation run.
type HTTPBenchResult struct {
	Requests   int
	Elapsed    time.Duration
	Failed     int
	Bytes      int64
	Concurrent int
}

// Throughput returns requests per second.
func (r HTTPBenchResult) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests-r.Failed) / r.Elapsed.Seconds()
}

// InstallHTTPD installs master and worker binaries, returning the master
// path. The server runs until StopHTTPD; there is no request quota.
func InstallHTTPD(k Kernel, port uint16, workers int) (string, error) {
	w, err := BuildHTTPWorker()
	if err != nil {
		return "", err
	}
	if err := k.InstallProgram("/bin/httpd-worker", w); err != nil {
		return "", err
	}
	m, err := BuildHTTPMaster(port, "/bin/httpd-worker", workers)
	if err != nil {
		return "", err
	}
	if err := k.InstallProgram("/bin/httpd", m); err != nil {
		return "", err
	}
	return "/bin/httpd", nil
}

// StopHTTPD shuts a running HTTPD down in-band: it sends one QuitRequest
// per worker. Each live worker consumes exactly one (it exits right
// after), the master reaps them and exits, and the listener closes with
// the last fd reference. Works identically on all three kernels — no
// signal support required.
func StopHTTPD(k Kernel, port uint16, workers int) {
	for i := 0; i < workers; i++ {
		conn, err := k.Host().Dial(port)
		if err != nil {
			return // listener already gone: server is down
		}
		// Write and close without waiting for a reply; the bytes stay
		// readable in the stream buffer after close, so the worker
		// still sees the request.
		_, _ = conn.Write([]byte(QuitRequest))
		conn.Close()
	}
}

// RunHTTPBench is the ApacheBench analog: it drives exactly totalRequests
// requests at the given concurrency against the server on the kernel's
// host loopback, returning the measured throughput.
func RunHTTPBench(k Kernel, port uint16, concurrency, totalRequests int) HTTPBenchResult {
	var (
		wg      sync.WaitGroup
		failed  atomic.Int64
		nbytes  atomic.Int64
		pending atomic.Int64
	)
	pending.Store(int64(totalRequests))
	start := time.Now()
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 4096)
			for pending.Add(-1) >= 0 {
				conn, err := dialRetry(k, port, 200)
				if err != nil {
					failed.Add(1)
					continue
				}
				if _, err := conn.Write([]byte("GET / HTTP/1.0\r\n\r\n")); err != nil {
					failed.Add(1)
					conn.Close()
					continue
				}
				got := 0
				for got < PageSize10K {
					n, err := conn.Read(buf)
					if n > 0 {
						got += n
						nbytes.Add(int64(n))
					}
					if err != nil {
						break
					}
				}
				if got < PageSize10K {
					failed.Add(1)
				}
				conn.Close()
			}
		}()
	}
	wg.Wait()
	return HTTPBenchResult{
		Requests:   totalRequests,
		Elapsed:    time.Since(start),
		Failed:     int(failed.Load()),
		Bytes:      nbytes.Load(),
		Concurrent: concurrency,
	}
}

func dialRetry(k Kernel, port uint16, attempts int) (io.ReadWriteCloser, error) {
	for i := 0; ; i++ {
		conn, err := k.Host().Dial(port)
		if err == nil {
			return connCloser{conn}, nil
		}
		if i >= attempts {
			return nil, err
		}
		time.Sleep(time.Millisecond)
	}
}

type connCloser struct {
	c interface {
		Read([]byte) (int, error)
		Write([]byte) (int, error)
		Close()
	}
}

func (cc connCloser) Read(p []byte) (int, error)  { return cc.c.Read(p) }
func (cc connCloser) Write(p []byte) (int, error) { return cc.c.Write(p) }
func (cc connCloser) Close() error                { cc.c.Close(); return nil }
