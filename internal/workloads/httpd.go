package workloads

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/libos"
	"repro/internal/ulib"
)

// PageSize10K is the HTML page size served by the lighttpd workload
// (10 KB pages, as in §9.1).
const PageSize10K = 10 * 1024

// BuildHTTPWorker builds a lighttpd worker: it accepts connections on the
// inherited listening socket (fd 6), reads a request, writes the 10 KB
// page, and exits after reqs requests.
func BuildHTTPWorker(reqs int) (*asm.Program, error) {
	page := make([]byte, PageSize10K)
	copy(page, "<html>occlum</html>")
	b := asm.NewBuilder()
	b.Bytes("page", page)
	b.Zero("req", 128)
	b.Entry("_start")
	ulib.Prologue(b)
	b.MovRI(isa.R9, int64(reqs))
	b.Label("serve")
	b.CmpI(isa.R9, 0)
	b.Jle("done")
	// cfd = accept(ListenFD)
	b.MovRI(isa.R1, ListenFD)
	ulib.Syscall(b, libos.SysAccept)
	b.MovRR(isa.R6, isa.R0)
	b.CmpI(isa.R6, 0)
	b.Jl("done")
	// read(cfd, req, 128)
	b.MovRR(isa.R1, isa.R6)
	b.LeaData(isa.R2, "req")
	b.MovRI(isa.R3, 128)
	ulib.Syscall(b, libos.SysRead)
	// write(cfd, page, PageSize10K)
	b.MovRR(isa.R1, isa.R6)
	b.LeaData(isa.R2, "page")
	b.MovRI(isa.R3, PageSize10K)
	ulib.Syscall(b, libos.SysWrite)
	ulib.Close(b, isa.R6)
	b.SubI(isa.R9, 1)
	b.Jmp("serve")
	b.Label("done")
	b.Nop()
	ulib.Exit(b, 0)
	return b.Finish()
}

// BuildHTTPMaster builds the lighttpd master: it binds the listening
// socket, spawns the worker processes (which inherit the socket, as the
// paper's configuration does), and waits for them.
func BuildHTTPMaster(port uint16, workerPath string, workers int) (*asm.Program, error) {
	b := asm.NewBuilder()
	b.String("wpath", workerPath)
	b.Entry("_start")
	ulib.Prologue(b)
	// sfd = socket(); bind(sfd, port); listen(sfd); dup2(sfd, ListenFD)
	ulib.Syscall(b, libos.SysSocket)
	b.MovRR(isa.R6, isa.R0)
	b.MovRR(isa.R1, isa.R6)
	b.MovRI(isa.R2, int64(port))
	ulib.Syscall(b, libos.SysBind)
	b.MovRR(isa.R1, isa.R6)
	ulib.Syscall(b, libos.SysListen)
	b.MovRR(isa.R1, isa.R6)
	b.MovRI(isa.R2, ListenFD)
	ulib.Syscall(b, libos.SysDup2)
	ulib.Close(b, isa.R6)
	for i := 0; i < workers; i++ {
		ulib.SpawnPath(b, "wpath", int64(len(workerPath)), "", 0)
		b.Push(isa.R0)
	}
	for i := 0; i < workers; i++ {
		b.Pop(isa.R6)
		ulib.Wait4(b, isa.R6)
	}
	ulib.Exit(b, 0)
	return b.Finish()
}

// HTTPBenchResult reports a load-generation run.
type HTTPBenchResult struct {
	Requests   int
	Elapsed    time.Duration
	Failed     int
	Bytes      int64
	Concurrent int
}

// Throughput returns requests per second.
func (r HTTPBenchResult) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests-r.Failed) / r.Elapsed.Seconds()
}

// InstallHTTPD installs master and worker binaries configured for the
// given total request count split across workers, returning the master
// path.
func InstallHTTPD(k Kernel, port uint16, workers, totalRequests int) (string, error) {
	per := totalRequests / workers
	if per*workers != totalRequests {
		return "", fmt.Errorf("workloads: requests %d not divisible by %d workers", totalRequests, workers)
	}
	w, err := BuildHTTPWorker(per)
	if err != nil {
		return "", err
	}
	if err := k.InstallProgram("/bin/httpd-worker", w); err != nil {
		return "", err
	}
	m, err := BuildHTTPMaster(port, "/bin/httpd-worker", workers)
	if err != nil {
		return "", err
	}
	if err := k.InstallProgram("/bin/httpd", m); err != nil {
		return "", err
	}
	return "/bin/httpd", nil
}

// RunHTTPBench is the ApacheBench analog: it drives exactly totalRequests
// requests at the given concurrency against the server on the kernel's
// host loopback, returning the measured throughput.
func RunHTTPBench(k Kernel, port uint16, concurrency, totalRequests int) HTTPBenchResult {
	var (
		wg      sync.WaitGroup
		failed  atomic.Int64
		nbytes  atomic.Int64
		pending atomic.Int64
	)
	pending.Store(int64(totalRequests))
	start := time.Now()
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 4096)
			for pending.Add(-1) >= 0 {
				conn, err := dialRetry(k, port, 200)
				if err != nil {
					failed.Add(1)
					continue
				}
				if _, err := conn.Write([]byte("GET / HTTP/1.0\r\n\r\n")); err != nil {
					failed.Add(1)
					conn.Close()
					continue
				}
				got := 0
				for got < PageSize10K {
					n, err := conn.Read(buf)
					if n > 0 {
						got += n
						nbytes.Add(int64(n))
					}
					if err != nil {
						break
					}
				}
				if got < PageSize10K {
					failed.Add(1)
				}
				conn.Close()
			}
		}()
	}
	wg.Wait()
	return HTTPBenchResult{
		Requests:   totalRequests,
		Elapsed:    time.Since(start),
		Failed:     int(failed.Load()),
		Bytes:      nbytes.Load(),
		Concurrent: concurrency,
	}
}

func dialRetry(k Kernel, port uint16, attempts int) (io.ReadWriteCloser, error) {
	for i := 0; ; i++ {
		conn, err := k.Host().Dial(port)
		if err == nil {
			return connCloser{conn}, nil
		}
		if i >= attempts {
			return nil, err
		}
		time.Sleep(time.Millisecond)
	}
}

type connCloser struct {
	c interface {
		Read([]byte) (int, error)
		Write([]byte) (int, error)
		Close()
	}
}

func (cc connCloser) Read(p []byte) (int, error)  { return cc.c.Read(p) }
func (cc connCloser) Write(p []byte) (int, error) { return cc.c.Write(p) }
func (cc connCloser) Close() error                { cc.c.Close(); return nil }
