package workloads

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/asm"
	"repro/internal/hostos"
	"repro/internal/isa"
	"repro/internal/libos"
	"repro/internal/ulib"
)

// PageSize10K is the HTML page size served by the lighttpd workload
// (10 KB pages, as in §9.1).
const PageSize10K = 10 * 1024

// QuitRequest is the in-band shutdown request understood by HTTPD
// workers: a request whose first byte is 'Q' makes the accepting worker
// exit instead of serving the page. StopHTTPD sends one per worker.
const QuitRequest = "QUIT\r\n\r\n"

// ResponseHeader is the status line + headers every worker sends before
// the page body. Since the zero-copy rework the workers gather header
// and body with a single writev instead of staging them into one
// buffer (or paying one syscall per part).
const ResponseHeader = "HTTP/1.0 200 OK\r\nContent-Length: 10240\r\n\r\n"

// ResponseSize is the full response length clients read per request.
const ResponseSize = len(ResponseHeader) + PageSize10K

// BuildHTTPWorker builds a lighttpd worker: it accepts connections on
// the inherited listening socket (fd 62) and serves the 10 KB page until
// explicitly stopped — by a QuitRequest or by the listener closing.
// Workers no longer exit after a request quota, so one server instance
// survives any number of benchmark rounds.
func BuildHTTPWorker() (*asm.Program, error) {
	page := make([]byte, PageSize10K)
	copy(page, "<html>occlum</html>")
	b := asm.NewBuilder()
	b.String("hdr", ResponseHeader)
	b.Bytes("page", page)
	b.Zero("iov", 32)
	b.Zero("req", 128)
	b.Entry("_start")
	ulib.Prologue(b)
	// The response iovec never changes: {header, page}. Fill it once.
	ulib.IovSetSym(b, "iov", 0, "hdr", int64(len(ResponseHeader)))
	ulib.IovSetSym(b, "iov", 1, "page", PageSize10K)
	b.Label("serve")
	// cfd = accept(ListenFD); a failed accept means the listener is
	// gone — stop serving.
	b.MovRI(isa.R1, ListenFD)
	ulib.Syscall(b, libos.SysAccept)
	b.MovRR(isa.R6, isa.R0)
	b.CmpI(isa.R6, 0)
	b.Jl("done")
	// read(cfd, req, 128)
	b.MovRR(isa.R1, isa.R6)
	b.LeaData(isa.R2, "req")
	b.MovRI(isa.R3, 128)
	ulib.Syscall(b, libos.SysRead)
	// A 'Q' request is the stop order.
	b.LeaData(isa.R8, "req")
	b.LoadB(isa.R7, isa.Mem(isa.R8, 0))
	b.CmpI(isa.R7, int32(QuitRequest[0]))
	b.Je("quit")
	// writev(cfd, {header, page}): one gather syscall per response.
	ulib.Writev(b, isa.R6, "iov", 2)
	ulib.Close(b, isa.R6)
	b.Jmp("serve")
	b.Label("quit")
	b.Nop()
	ulib.Close(b, isa.R6)
	b.Label("done")
	b.Nop()
	ulib.Exit(b, 0)
	return b.Finish()
}

// BuildHTTPMaster builds the lighttpd master: it binds the listening
// socket, spawns the worker processes (which inherit the socket, as the
// paper's configuration does), and waits for them.
func BuildHTTPMaster(port uint16, workerPath string, workers int) (*asm.Program, error) {
	b := asm.NewBuilder()
	b.String("wpath", workerPath)
	b.Entry("_start")
	ulib.Prologue(b)
	// sfd = socket(); bind(sfd, port); listen(sfd); dup2(sfd, ListenFD)
	ulib.Syscall(b, libos.SysSocket)
	b.MovRR(isa.R6, isa.R0)
	b.MovRR(isa.R1, isa.R6)
	b.MovRI(isa.R2, int64(port))
	ulib.Syscall(b, libos.SysBind)
	b.MovRR(isa.R1, isa.R6)
	ulib.Syscall(b, libos.SysListen)
	b.MovRR(isa.R1, isa.R6)
	b.MovRI(isa.R2, ListenFD)
	ulib.Syscall(b, libos.SysDup2)
	ulib.Close(b, isa.R6)
	for i := 0; i < workers; i++ {
		ulib.SpawnPath(b, "wpath", int64(len(workerPath)), "", 0)
		b.Push(isa.R0)
	}
	for i := 0; i < workers; i++ {
		b.Pop(isa.R6)
		ulib.Wait4(b, isa.R6)
	}
	ulib.Exit(b, 0)
	return b.Finish()
}

// EventMaxEvents is the epoll_wait batch size of the event-driven
// worker.
const EventMaxEvents = 64

// BuildEventHTTPWorker builds the event-driven lighttpd worker: one
// epoll loop multiplexing the shared nonblocking listener and every
// accepted connection, so a single SIP serves an unbounded number of
// concurrent clients — the C10K configuration. Contrast with
// BuildHTTPWorker, which dedicates its SIP to one connection at a time.
//
// The loop: epoll_wait on {listener, conns...}; listener readiness
// drains the backlog through nonblocking accepts (losing the accept race
// to a sibling worker just yields EAGAIN) and registers each connection
// for EPOLLIN; connection readiness reads the request and answers with
// the 10 KB page. Sends use the blocking (parking) path — a slow client
// parks this worker without holding a hart, it does not spin.
//
// A QUIT request stops the worker. Before exiting it dials one QUIT back
// into its own port, so the stop order propagates worker-to-worker no
// matter which worker's accept loop swallowed the original quit
// connections — without this, one worker could drain several quits into
// its epoll set, exit after reading the first, and strand its siblings.
func BuildEventHTTPWorker(port uint16) (*asm.Program, error) {
	page := make([]byte, PageSize10K)
	copy(page, "<html>occlum</html>")
	b := asm.NewBuilder()
	b.String("hdr", ResponseHeader)
	b.Bytes("page", page)
	b.Zero("iov", 32)
	b.Zero("req", 128)
	b.Zero("evbuf", EventMaxEvents*16)
	b.String("quitmsg", QuitRequest)
	b.Entry("_start")
	ulib.Prologue(b)
	// The response iovec never changes: {header, page}. Fill it here —
	// IovSetSym clobbers R8/R9, which the event loop owns below.
	ulib.IovSetSym(b, "iov", 0, "hdr", int64(len(ResponseHeader)))
	ulib.IovSetSym(b, "iov", 1, "page", PageSize10K)
	// R10 = epoll_create(); watch the inherited listener.
	ulib.EpCreate(b)
	b.MovRR(isa.R10, isa.R0)
	ulib.EpCtlI(b, isa.R10, libos.EpCtlAdd, ListenFD, libos.PollIn)

	b.Label("waitloop")
	// R9 = epoll_wait(epfd, evbuf, max, -1): parks until something is
	// readable.
	ulib.EpWait(b, isa.R10, "evbuf", EventMaxEvents, -1)
	b.MovRR(isa.R9, isa.R0)
	b.CmpI(isa.R9, 0)
	b.Jle("waitloop")
	b.LeaData(isa.R11, "evbuf")

	b.Label("event")
	b.CmpI(isa.R9, 0)
	b.Jle("waitloop")
	b.Load(isa.R6, isa.Mem(isa.R11, 0)) // entry.fd
	b.AddI(isa.R11, 16)
	b.SubI(isa.R9, 1)
	b.CmpI(isa.R6, ListenFD)
	b.Je("acceptloop")

	// Connection readable: read the request.
	ulib.RecvSym(b, isa.R6, "req", 128)
	b.CmpI(isa.R0, 0)
	b.Jl("event") // spurious EAGAIN: stays registered
	b.Je("drop")  // EOF: client went away
	b.LeaData(isa.R8, "req")
	b.LoadB(isa.R7, isa.Mem(isa.R8, 0))
	b.CmpI(isa.R7, int32(QuitRequest[0]))
	b.Je("quit")
	// Serve header + page with one gather writev. The connection is
	// blocking, so the kernel's partial-progress protocol (cursys.prog)
	// parks and resumes against a full 256 KB receive buffer until every
	// byte is queued; a short return therefore means the client vanished
	// mid-response. The connection then stays registered — persistent
	// connections are what makes C10K a concurrency benchmark rather
	// than a dial storm; the client closes when done and the EOF path
	// below cleans up.
	ulib.Writev(b, isa.R6, "iov", 2)
	b.CmpI(isa.R0, int32(ResponseSize))
	b.Jne("drop") // EPIPE or short count: client closed early
	b.Jmp("event")

	b.Label("drop")
	ulib.EpCtl(b, isa.R10, libos.EpCtlDel, isa.R6, 0)
	ulib.Close(b, isa.R6)
	b.Jmp("event")

	// Listener readable: drain the backlog (nonblocking), registering
	// every new connection.
	b.Label("acceptloop")
	ulib.Accept(b, ListenFD)
	b.CmpI(isa.R0, 0)
	b.Jl("event") // EAGAIN: backlog drained (or lost to a sibling)
	b.MovRR(isa.R7, isa.R0)
	ulib.EpCtl(b, isa.R10, libos.EpCtlAdd, isa.R7, libos.PollIn)
	b.Jmp("acceptloop")

	// Stop order: close the quit connection, propagate one quit to the
	// siblings, exit.
	b.Label("quit")
	ulib.EpCtl(b, isa.R10, libos.EpCtlDel, isa.R6, 0)
	ulib.Close(b, isa.R6)
	ulib.Socket(b)
	b.MovRR(isa.R6, isa.R0)
	ulib.Connect(b, isa.R6, int64(port))
	b.CmpI(isa.R0, 0)
	b.Jl("noprop") // listener already gone: everyone is stopping
	ulib.SendSym(b, isa.R6, "quitmsg", int64(len(QuitRequest)))
	b.Label("noprop")
	ulib.Close(b, isa.R6)
	ulib.Exit(b, 0)
	return b.Finish()
}

// BuildEventHTTPMaster builds the event-driven server's master: bind,
// listen, make the listener description nonblocking (workers inherit the
// description, so one fcntl covers the whole accept herd), spawn the
// workers, reap them.
func BuildEventHTTPMaster(port uint16, workerPath string, workers int) (*asm.Program, error) {
	b := asm.NewBuilder()
	b.String("wpath", workerPath)
	b.Entry("_start")
	ulib.Prologue(b)
	// sfd = socket(); bind; listen; dup2(sfd, ListenFD); close(sfd)
	ulib.Socket(b)
	b.MovRR(isa.R6, isa.R0)
	ulib.Bind(b, isa.R6, int64(port))
	ulib.ListenSock(b, isa.R6)
	b.MovRR(isa.R1, isa.R6)
	b.MovRI(isa.R2, ListenFD)
	ulib.Syscall(b, libos.SysDup2)
	ulib.Close(b, isa.R6)
	// The nonblocking acceptor: O_NONBLOCK is a property of the shared
	// open file description, so setting it here covers every worker.
	ulib.Fcntl(b, ListenFD, libos.FSetFl, libos.ONonblock)
	for i := 0; i < workers; i++ {
		ulib.SpawnPath(b, "wpath", int64(len(workerPath)), "", 0)
		b.Push(isa.R0)
	}
	for i := 0; i < workers; i++ {
		b.Pop(isa.R6)
		ulib.Wait4(b, isa.R6)
	}
	ulib.Exit(b, 0)
	return b.Finish()
}

// BuildFileHTTPWorker builds a static-file worker: it serves the file
// at path (size bytes) by sending the header with writev and pumping
// the body straight from the filesystem with sendfile. When the file
// lives in the integrity-verified image layer the body bytes ride
// borrowed page-cache blocks — no byte of the payload ever transits
// guest memory. Occlum-only: sendfile is not part of the baselines'
// syscall surface.
func BuildFileHTTPWorker(path string, size int) (*asm.Program, error) {
	hdr := fmt.Sprintf("HTTP/1.0 200 OK\r\nContent-Length: %d\r\n\r\n", size)
	b := asm.NewBuilder()
	b.String("path", path)
	b.String("hdr", hdr)
	b.Zero("iov", 16)
	b.Zero("req", 128)
	b.Entry("_start")
	ulib.Prologue(b)
	// The file is opened once; sendfile's pread-style offset argument
	// means no seek is ever needed between requests.
	ulib.OpenPath(b, "path", int64(len(path)), libos.ORdOnly)
	b.MovRR(isa.R10, isa.R0)
	b.CmpI(isa.R10, 0)
	b.Jl("done")
	ulib.IovSetSym(b, "iov", 0, "hdr", int64(len(hdr)))
	b.Label("serve")
	b.MovRI(isa.R1, ListenFD)
	ulib.Syscall(b, libos.SysAccept)
	b.MovRR(isa.R6, isa.R0)
	b.CmpI(isa.R6, 0)
	b.Jl("done")
	// read(cfd, req, 128)
	b.MovRR(isa.R1, isa.R6)
	b.LeaData(isa.R2, "req")
	b.MovRI(isa.R3, 128)
	ulib.Syscall(b, libos.SysRead)
	// A 'Q' request is the stop order.
	b.LeaData(isa.R8, "req")
	b.LoadB(isa.R7, isa.Mem(isa.R8, 0))
	b.CmpI(isa.R7, int32(QuitRequest[0]))
	b.Je("quit")
	// Header by gather write, body straight from the page cache.
	ulib.Writev(b, isa.R6, "iov", 1)
	ulib.Sendfile(b, isa.R6, isa.R10, 0, int64(size))
	ulib.Close(b, isa.R6)
	b.Jmp("serve")
	b.Label("quit")
	b.Nop()
	ulib.Close(b, isa.R6)
	b.Label("done")
	b.Nop()
	ulib.Exit(b, 0)
	return b.Finish()
}

// InstallFileHTTPD installs the static-file server (shared master +
// sendfile workers) serving the file at filePath, returning the master
// path.
func InstallFileHTTPD(k Kernel, port uint16, workers int, filePath string, size int) (string, error) {
	w, err := BuildFileHTTPWorker(filePath, size)
	if err != nil {
		return "", err
	}
	if err := k.InstallProgram("/bin/fhttpd-worker", w); err != nil {
		return "", err
	}
	m, err := BuildHTTPMaster(port, "/bin/fhttpd-worker", workers)
	if err != nil {
		return "", err
	}
	if err := k.InstallProgram("/bin/fhttpd", m); err != nil {
		return "", err
	}
	return "/bin/fhttpd", nil
}

// HTTPBenchResult reports a load-generation run.
type HTTPBenchResult struct {
	Requests   int
	Elapsed    time.Duration
	Failed     int
	Bytes      int64
	Concurrent int
}

// Throughput returns requests per second.
func (r HTTPBenchResult) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests-r.Failed) / r.Elapsed.Seconds()
}

// InstallHTTPD installs master and worker binaries, returning the master
// path. The server runs until StopHTTPD; there is no request quota.
func InstallHTTPD(k Kernel, port uint16, workers int) (string, error) {
	w, err := BuildHTTPWorker()
	if err != nil {
		return "", err
	}
	if err := k.InstallProgram("/bin/httpd-worker", w); err != nil {
		return "", err
	}
	m, err := BuildHTTPMaster(port, "/bin/httpd-worker", workers)
	if err != nil {
		return "", err
	}
	if err := k.InstallProgram("/bin/httpd", m); err != nil {
		return "", err
	}
	return "/bin/httpd", nil
}

// InstallEventHTTPD installs the event-driven (epoll) master and worker
// binaries, returning the master path. Used by examples/webserver and
// the C10K benchmark; the thread-per-connection InstallHTTPD remains the
// portable baseline that runs on all three kernels.
func InstallEventHTTPD(k Kernel, port uint16, workers int) (string, error) {
	w, err := BuildEventHTTPWorker(port)
	if err != nil {
		return "", err
	}
	if err := k.InstallProgram("/bin/ehttpd-worker", w); err != nil {
		return "", err
	}
	m, err := BuildEventHTTPMaster(port, "/bin/ehttpd-worker", workers)
	if err != nil {
		return "", err
	}
	if err := k.InstallProgram("/bin/ehttpd", m); err != nil {
		return "", err
	}
	return "/bin/ehttpd", nil
}

// StopHTTPD shuts a running HTTPD down in-band: it sends one QuitRequest
// per worker. Each live worker consumes exactly one (it exits right
// after), the master reaps them and exits, and the listener closes with
// the last fd reference. Works identically on all three kernels — no
// signal support required.
func StopHTTPD(k Kernel, port uint16, workers int) {
	for i := 0; i < workers; i++ {
		conn, err := k.Host().Dial(port)
		if err != nil {
			return // listener already gone: server is down
		}
		// Write and close without waiting for a reply; the bytes stay
		// readable in the stream buffer after close, so the worker
		// still sees the request.
		_, _ = conn.Write([]byte(QuitRequest))
		conn.Close()
	}
}

// RunHTTPBench is the ApacheBench analog: it drives exactly totalRequests
// requests at the given concurrency against the server on the kernel's
// host loopback, returning the measured throughput.
func RunHTTPBench(k Kernel, port uint16, concurrency, totalRequests int) HTTPBenchResult {
	var (
		wg      sync.WaitGroup
		failed  atomic.Int64
		nbytes  atomic.Int64
		pending atomic.Int64
	)
	pending.Store(int64(totalRequests))
	start := time.Now()
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 4096)
			for pending.Add(-1) >= 0 {
				conn, err := dialRetry(k, port, 200)
				if err != nil {
					failed.Add(1)
					continue
				}
				if _, err := conn.Write([]byte("GET / HTTP/1.0\r\n\r\n")); err != nil {
					failed.Add(1)
					conn.Close()
					continue
				}
				got := 0
				for got < ResponseSize {
					n, err := conn.Read(buf)
					if n > 0 {
						got += n
						nbytes.Add(int64(n))
					}
					if err != nil {
						break
					}
				}
				if got < ResponseSize {
					failed.Add(1)
				}
				conn.Close()
			}
		}()
	}
	wg.Wait()
	return HTTPBenchResult{
		Requests:   totalRequests,
		Elapsed:    time.Since(start),
		Failed:     int(failed.Load()),
		Bytes:      nbytes.Load(),
		Concurrent: concurrency,
	}
}

// C10KResult reports a concurrent-connection scaling run.
type C10KResult struct {
	// Conns is the number of simultaneously open connections; every one
	// is connected before the first request is sent.
	Conns int
	// Requests/Failed count request rounds across all connections.
	Requests, Failed int
	// Elapsed covers the request phase only (connect storm excluded).
	Elapsed time.Duration
	// Bytes is the total payload received.
	Bytes int64
	// P50/P99 are request latency percentiles (send → full response).
	P50, P99 time.Duration
	// Churns counts deliberate close+redial cycles (RunC10KChurn only):
	// each one pushes a connection back through accept, epoll
	// registration and idle-reap arming while the rest keep serving.
	Churns int
}

// Throughput returns successful requests per second.
func (r C10KResult) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests-r.Failed) / r.Elapsed.Seconds()
}

// RunC10K drives the C10K scaling experiment: open conns connections
// concurrently (all connected and held open before any request flows —
// the seed's thread-per-connection server cannot get past the hart
// count here, the event-driven one must not care), then run rounds
// request rounds per connection over the persistent connections,
// closing only at the end. Latency percentiles are measured per
// request.
func RunC10K(k Kernel, port uint16, conns, rounds int) C10KResult {
	return runC10K(k, port, conns, rounds, 0)
}

// RunC10KChurn is RunC10K with connection churn: before every
// churnStride'th round, a connection closes and redials, so each round
// retires roughly conns/churnStride connections and accepts as many new
// ones while the rest keep serving. Churn is what separates "holds N
// open connections" from "survives N connections' lifecycle" — it keeps
// the accept path, epoll registration/removal and idle-reap arm/cancel
// hot during the timed phase, which is where the tail latency of the
// steady connections shows table-lock or timer-cancel contention.
func RunC10KChurn(k Kernel, port uint16, conns, rounds, churnStride int) C10KResult {
	return runC10K(k, port, conns, rounds, churnStride)
}

func runC10K(k Kernel, port uint16, conns, rounds, churnStride int) C10KResult {
	var (
		wg     sync.WaitGroup
		failed atomic.Int64
		nbytes atomic.Int64
		churns atomic.Int64
	)
	cs := make([]*hostos.Conn, conns)
	latMu := sync.Mutex{}
	lats := make([]time.Duration, 0, conns*rounds)

	// Phase 1: the connect storm. The listen backlog is 128, as real
	// servers configure, so dials retry while the acceptors drain. One
	// untimed warmup request per connection then guarantees every
	// connection is accepted and registered with a worker's epoll set
	// before the clock starts — the timed phase measures steady-state
	// serving at N concurrent connections, not the accept ramp.
	for i := range cs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := dialConnRetry(k, port, 30*time.Second)
			if err != nil {
				return
			}
			buf := make([]byte, 4096)
			if _, err := conn.Write([]byte("GET / HTTP/1.0\r\n\r\n")); err != nil {
				conn.Close()
				return
			}
			for got := 0; got < ResponseSize; {
				n, err := conn.Read(buf)
				got += n
				if err != nil {
					conn.Close()
					return
				}
			}
			cs[i] = conn
		}(i)
	}
	wg.Wait()

	// Phase 2: request rounds over the held-open connections. In-flight
	// requests are capped at 1024 — C10K is ten thousand OPEN
	// connections (all registered in the server's interest lists, all
	// capable of becoming active), not ten thousand requests in flight;
	// the bounded active set is what the original problem statement
	// calls "mostly-idle connections", and it keeps the load generator
	// itself from becoming the bottleneck being measured.
	sem := make(chan struct{}, 1024)
	start := time.Now()
	for i := range cs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn := cs[i]
			buf := make([]byte, 4096)
			myLats := make([]time.Duration, 0, rounds)
			round := func() {
				if conn == nil {
					var err error
					conn, err = dialConnRetry(k, port, 30*time.Second)
					if err != nil {
						failed.Add(1)
						return
					}
				}
				t0 := time.Now()
				if _, err := conn.Write([]byte("GET / HTTP/1.0\r\n\r\n")); err != nil {
					failed.Add(1)
					conn.Close()
					conn = nil
					return
				}
				got := 0
				for got < ResponseSize {
					n, err := conn.Read(buf)
					if n > 0 {
						got += n
						nbytes.Add(int64(n))
					}
					if err != nil {
						break
					}
				}
				if got < ResponseSize {
					failed.Add(1)
					conn.Close()
					conn = nil
					return
				}
				myLats = append(myLats, time.Since(t0))
			}
			for r := 0; r < rounds; r++ {
				// Staggered by connection index so every round churns a
				// slice of the population rather than round k churning
				// everyone at once.
				if churnStride > 0 && (i+r)%churnStride == 0 && conn != nil {
					conn.Close()
					conn = nil
					churns.Add(1)
				}
				sem <- struct{}{}
				round()
				<-sem
			}
			if conn != nil {
				conn.Close()
			}
			latMu.Lock()
			lats = append(lats, myLats...)
			latMu.Unlock()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	return C10KResult{
		Conns:    conns,
		Requests: conns * rounds,
		Failed:   int(failed.Load()),
		Elapsed:  elapsed,
		Bytes:    nbytes.Load(),
		P50:      pct(0.50),
		P99:      pct(0.99),
		Churns:   int(churns.Load()),
	}
}

// dialConnRetry dials until the backlog has room or the deadline passes.
func dialConnRetry(k Kernel, port uint16, timeout time.Duration) (*hostos.Conn, error) {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := k.Host().Dial(port)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(time.Millisecond)
	}
}

func dialRetry(k Kernel, port uint16, attempts int) (io.ReadWriteCloser, error) {
	for i := 0; ; i++ {
		conn, err := k.Host().Dial(port)
		if err == nil {
			return connCloser{conn}, nil
		}
		if i >= attempts {
			return nil, err
		}
		time.Sleep(time.Millisecond)
	}
}

type connCloser struct {
	c interface {
		Read([]byte) (int, error)
		Write([]byte) (int, error)
		Close()
	}
}

func (cc connCloser) Read(p []byte) (int, error)  { return cc.c.Read(p) }
func (cc connCloser) Write(p []byte) (int, error) { return cc.c.Write(p) }
func (cc connCloser) Close() error                { cc.c.Close(); return nil }
