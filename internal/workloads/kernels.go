package workloads

import (
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/eip"
	"repro/internal/hostos"
	"repro/internal/libos"
	"repro/internal/linuxsim"
	"repro/internal/sgx"
)

// KernelSpec sizes the systems under test.
type KernelSpec struct {
	// Domains is the number of preallocated Occlum domains.
	Domains int
	// DomainCode / DomainData size each Occlum domain.
	DomainCode, DomainData uint64
	// EIPEnclaveSize is the per-process enclave size of the
	// Graphene-SGX baseline ("minimal size able to run the benchmark").
	EIPEnclaveSize uint64
	// Harts overrides the Occlum hart-pool size (SGX TCS count); 0
	// keeps the default of twice the domain count. SIP concurrency is
	// bounded by Domains either way — the M:N scheduler multiplexes.
	Harts int
	// BaseImageBlob, when non-empty, is a packed occlum-image blob the
	// Occlum kernel mounts read-only under the writable layer (union
	// root), pinned to BaseImageRoot.
	BaseImageBlob []byte
	BaseImageRoot [32]byte
	// IdleTimeout, when positive, enables the Occlum kernel's
	// wheel-driven idle reaper: accepted connections with no data
	// activity for this long are closed server-side.
	IdleTimeout time.Duration
	// ShedThreshold, when positive, enables accept-rate shedding: the
	// Occlum kernel refuses (accept-and-close) inbound connections
	// while at least this many SIPs sit in run queues.
	ShedThreshold int
	// Stdout receives console output.
	Stdout io.Writer
}

// DefaultSpec fits the small workloads used in tests.
func DefaultSpec() KernelSpec {
	return KernelSpec{
		Domains:        8,
		DomainCode:     1 << 20,
		DomainData:     4 << 20,
		EIPEnclaveSize: 8 << 20,
	}
}

// NewOcclumKernel boots an Occlum system per spec.
func NewOcclumKernel(spec KernelSpec) (*OcclumKernel, error) {
	tc := core.NewToolchain()
	lc := libos.DefaultConfig()
	lc.NumDomains = spec.Domains
	lc.DomainCodeSize = spec.DomainCode
	lc.DomainDataSize = spec.DomainData
	lc.MaxThreads = spec.Domains * 2
	if spec.Harts > 0 {
		lc.MaxThreads = spec.Harts
	}
	lc.IdleTimeout = spec.IdleTimeout
	lc.ShedThreshold = spec.ShedThreshold
	lc.VerifierKey = tc.Key()
	cfg := core.SystemConfig{
		LibOS:    lc,
		EPCBytes: 4 << 30,
		Stdout:   spec.Stdout,
	}
	if len(spec.BaseImageBlob) > 0 {
		cfg.LibOS.BaseImage = "base.img"
		cfg.LibOS.BaseImageRoot = spec.BaseImageRoot
		cfg.HostFiles = map[string][]byte{"base.img": spec.BaseImageBlob}
	}
	sys, err := core.BootSystem(cfg)
	if err != nil {
		return nil, err
	}
	return &OcclumKernel{Sys: sys, TC: tc}, nil
}

// NewLinuxKernel creates the native baseline.
func NewLinuxKernel(spec KernelSpec) *LinuxKernel {
	return &LinuxKernel{L: linuxsim.New(hostos.New()), TC: core.NewToolchain()}
}

// NewEIPKernel creates the Graphene-SGX-like baseline.
func NewEIPKernel(spec KernelSpec) *EIPKernel {
	cfg := eip.DefaultConfig()
	cfg.EnclaveSize = spec.EIPEnclaveSize
	return &EIPKernel{
		G:  eip.New(sgx.NewPlatform(8<<30), hostos.New(), cfg),
		TC: core.NewToolchain(),
	}
}

// AllKernels builds the three systems for a comparison run.
func AllKernels(spec KernelSpec) ([]Kernel, error) {
	occ, err := NewOcclumKernel(spec)
	if err != nil {
		return nil, err
	}
	return []Kernel{NewLinuxKernel(spec), occ, NewEIPKernel(spec)}, nil
}
