package workloads

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/fs"
	"repro/internal/libos"
)

// TestFileHTTPDSendfile: the static-file server ships the body with
// sendfile straight from the integrity-verified image layer. Every
// request must deliver the exact file bytes, and the net counters must
// show the body riding borrowed page-cache blocks (lent, not copied).
func TestFileHTTPDSendfile(t *testing.T) {
	const (
		port     = 8105
		workers  = 2
		requests = 8
		fileSize = 20000
	)
	body := make([]byte, fileSize)
	for i := range body {
		body[i] = byte(i*7 + (i >> 8))
	}
	ib := fs.NewImageBuilder()
	if err := ib.AddDir("/www"); err != nil {
		t.Fatal(err)
	}
	if err := ib.AddFile("/www/index.html", body); err != nil {
		t.Fatal(err)
	}
	blob, root, err := ib.Build()
	if err != nil {
		t.Fatal(err)
	}

	spec := DefaultSpec()
	spec.BaseImageBlob = blob
	spec.BaseImageRoot = root
	k, err := NewOcclumKernel(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer k.Sys.OS.Shutdown()

	master, err := InstallFileHTTPD(k, port, workers, "/www/index.html", fileSize)
	if err != nil {
		t.Fatal(err)
	}
	p, err := k.Spawn(master, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	hdr := fmt.Sprintf("HTTP/1.0 200 OK\r\nContent-Length: %d\r\n\r\n", fileSize)
	want := append([]byte(hdr), body...)
	net0 := libos.NetStats()
	for r := 0; r < requests; r++ {
		conn, err := dialRetry(k, port, 200)
		if err != nil {
			t.Fatalf("request %d: dial: %v", r, err)
		}
		if _, err := conn.Write([]byte("GET / HTTP/1.0\r\n\r\n")); err != nil {
			t.Fatalf("request %d: write: %v", r, err)
		}
		got := make([]byte, 0, len(want))
		buf := make([]byte, 4096)
		for len(got) < len(want) {
			n, err := conn.Read(buf)
			if n > 0 {
				got = append(got, buf[:n]...)
			}
			if err != nil {
				break
			}
		}
		conn.Close()
		if !bytes.Equal(got, want) {
			t.Fatalf("request %d: got %d bytes, want %d (equal=%v)",
				r, len(got), len(want), bytes.Equal(got, want))
		}
	}
	d := libos.NetStats().Sub(net0)
	StopHTTPD(k, port, workers)
	if status := p.Wait(); status != 0 {
		t.Fatalf("master status = %d", status)
	}
	if d.Sendfiles < requests {
		t.Fatalf("sendfiles = %d, want >= %d", d.Sendfiles, requests)
	}
	if d.Writevs < requests {
		t.Fatalf("writevs = %d, want >= %d", d.Writevs, requests)
	}
	if d.BytesLent < uint64(requests*fileSize) {
		t.Fatalf("bytes lent = %d, want >= %d (bodies must ride borrowed blocks)",
			d.BytesLent, requests*fileSize)
	}
	t.Logf("file httpd: %d requests, lent=%d copied=%d", requests, d.BytesLent, d.BytesCopied)
}
