package specint

import (
	"testing"

	"repro/internal/mmdsfi"
)

const testIters = 200

func TestAllKernelsRun(t *testing.T) {
	for _, r := range Suite {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			base, err := Measure(r, testIters, mmdsfi.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if base == 0 {
				t.Fatal("zero cycles")
			}
		})
	}
}

func TestDeterministicCycles(t *testing.T) {
	r := Suite[0]
	a, err := Measure(r, testIters, mmdsfi.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Measure(r, testIters, mmdsfi.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("non-deterministic cycle counts: %d vs %d", a, b)
	}
}

func TestOverheadPositiveAndBounded(t *testing.T) {
	var sum float64
	for _, r := range Suite {
		ov, err := Overhead(r, testIters, mmdsfi.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		if ov <= 0 {
			t.Errorf("%s: overhead %.1f%% not positive", r.Name, 100*ov)
		}
		if ov > 1.2 {
			t.Errorf("%s: overhead %.1f%% implausibly high", r.Name, 100*ov)
		}
		sum += ov
		t.Logf("%-11s %.1f%%", r.Name, 100*ov)
	}
	mean := sum / float64(len(Suite))
	t.Logf("mean: %.1f%% (paper: 36.6%%)", 100*mean)
	if mean < 0.10 || mean > 0.90 {
		t.Fatalf("mean overhead %.1f%% far from the paper's regime", 100*mean)
	}
}

func TestOptimizationsReduceOverhead(t *testing.T) {
	naive := mmdsfi.Options{ConfineControl: true, ConfineLoads: true, ConfineStores: true}
	for _, r := range Suite[:4] {
		n, err := Overhead(r, testIters, naive)
		if err != nil {
			t.Fatal(err)
		}
		o, err := Overhead(r, testIters, mmdsfi.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if o > n {
			t.Errorf("%s: optimized overhead %.1f%% exceeds naive %.1f%%", r.Name, 100*o, 100*n)
		}
	}
}

func TestBreakdownComponents(t *testing.T) {
	// Selective confinement must cost less than full confinement.
	r := Suite[1] // bzip2: memory heavy
	full, err := Overhead(r, testIters, mmdsfi.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	loads, err := Overhead(r, testIters, mmdsfi.Options{ConfineLoads: true, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	stores, err := Overhead(r, testIters, mmdsfi.Options{ConfineStores: true, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if loads >= full || stores >= full {
		t.Fatalf("components (loads %.1f%%, stores %.1f%%) should be below full %.1f%%",
			100*loads, 100*stores, 100*full)
	}
}
