// Package specint provides the CPU-intensive kernel suite standing in for
// SPECint 2006 in the paper's Figure 7: twelve synthetic kernels, each
// with the characteristic instruction mix of its namesake (pointer
// chasing for mcf, call-dense dispatch for perlbench, streaming stores
// for libquantum, and so on).
//
// The kernels run on the bare virtual CPU, with and without MMDSFI
// instrumentation; because the interpreter counts retired instructions,
// the overhead numbers are exact and deterministic, not subject to
// measurement noise.
package specint

import (
	"encoding/binary"
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mmdsfi"
	"repro/internal/mpx"
	"repro/internal/vm"
)

// Recipe describes a kernel's per-iteration instruction mix.
type Recipe struct {
	// Name is the SPECint component this kernel models.
	Name string
	// Loads / Stores per iteration over a working array.
	Loads, Stores int
	// Chase is the length of a pointer-chasing walk per iteration
	// (dependent loads — the mcf/omnetpp access pattern).
	Chase int
	// Alu is the number of pure register operations per iteration.
	Alu int
	// Calls is the number of leaf-function calls per iteration; every
	// call's return is an indirect transfer under MMDSFI (the
	// dispatch-dense perlbench/xalancbmk pattern).
	Calls int
	// Branches adds extra conditional branches per iteration.
	Branches int
}

// Suite is the twelve-kernel suite of Figure 7a. The mixes follow the
// qualitative characterization of SPECint 2006: perlbench/gcc/xalancbmk
// are call- and branch-dense, mcf/omnetpp chase pointers, libquantum
// streams, hmmer/h264ref are load-dominated array code.
var Suite = []Recipe{
	{Name: "perlbench", Loads: 4, Stores: 2, Alu: 6, Calls: 4, Branches: 3},
	{Name: "bzip2", Loads: 6, Stores: 4, Alu: 10, Calls: 0, Branches: 2},
	{Name: "gcc", Loads: 5, Stores: 2, Chase: 2, Alu: 8, Calls: 3, Branches: 4},
	{Name: "mcf", Chase: 8, Loads: 1, Stores: 1, Alu: 4, Calls: 0, Branches: 1},
	{Name: "gobmk", Loads: 3, Stores: 1, Alu: 8, Calls: 2, Branches: 5},
	{Name: "hmmer", Loads: 10, Stores: 2, Alu: 12, Calls: 0, Branches: 1},
	{Name: "sjeng", Loads: 3, Stores: 1, Alu: 9, Calls: 2, Branches: 4},
	{Name: "libquantum", Loads: 2, Stores: 6, Alu: 12, Calls: 0, Branches: 1},
	{Name: "h264ref", Loads: 8, Stores: 3, Alu: 10, Calls: 1, Branches: 2},
	{Name: "omnetpp", Chase: 5, Loads: 2, Stores: 2, Alu: 5, Calls: 3, Branches: 2},
	{Name: "astar", Loads: 5, Stores: 1, Chase: 3, Alu: 6, Calls: 1, Branches: 3},
	{Name: "xalancbmk", Loads: 4, Stores: 2, Alu: 5, Calls: 4, Branches: 3},
}

const (
	arraySize = 1 << 14 // bytes; well within one domain
	chaseLen  = 256     // nodes in the pointer-chasing ring
)

// Build generates the kernel program for a recipe, running the mix for
// the given number of iterations. The program ends with a trap (the bare
// runner's exit signal) and never needs an OS.
func Build(r Recipe, iters int) (*asm.Program, error) {
	b := asm.NewBuilder()
	// Working array and pointer-chasing ring, pre-linked at build time
	// (offsets relative to the data region).
	ring := make([]byte, chaseLen*8)
	for i := 0; i < chaseLen; i++ {
		next := uint64((i + 97) % chaseLen * 8) // co-prime stride
		binary.LittleEndian.PutUint64(ring[i*8:], next)
	}
	b.Bytes("ring", ring)
	b.Zero("arr", arraySize)

	b.Entry("_start")
	b.MovRI(isa.R9, int64(iters)) // iteration counter
	b.LeaData(isa.R8, "arr")      // array base
	b.LeaData(isa.R7, "ring")     // ring base
	b.MovRI(isa.R6, 0)            // chase cursor (offset)
	b.MovRI(isa.R5, 0)            // array cursor
	b.MovRI(isa.R0, 0)            // accumulator

	b.Label("iter")

	// Array accesses: compute the block pointer once, then access at
	// small offsets — the common compiled-code shape that lets both
	// the real and the reproduced optimizer drop all but the first
	// mem_guard of the block (§4.3, redundant check elimination).
	if r.Loads > 0 || r.Stores > 0 {
		b.MovRR(isa.R4, isa.R8)
		b.Add(isa.R4, isa.R5)
	}
	for i := 0; i < r.Loads; i++ {
		b.Load(isa.R3, isa.Mem(isa.R4, int32(i*8%512)))
		b.Add(isa.R0, isa.R3)
	}
	for i := 0; i < r.Stores; i++ {
		b.Store(isa.Mem(isa.R4, int32(512+i*8%512)), isa.R0)
	}
	// Pointer chase: r6 = ring[r6].
	for i := 0; i < r.Chase; i++ {
		b.MovRR(isa.R4, isa.R7)
		b.Add(isa.R4, isa.R6)
		b.Load(isa.R6, isa.Mem(isa.R4, 0))
	}
	// ALU work.
	for i := 0; i < r.Alu; i++ {
		switch i % 4 {
		case 0:
			b.MulI(isa.R0, 33)
		case 1:
			b.AddI(isa.R0, 0x9E37)
		case 2:
			b.Xor(isa.R0, isa.R5)
		case 3:
			b.ShrI(isa.R0, 1)
		}
	}
	// Leaf calls (each return is an indirect transfer under MMDSFI).
	for i := 0; i < r.Calls; i++ {
		b.Call(fmt.Sprintf("leaf%d", i%2))
	}
	// Extra conditional branches.
	for i := 0; i < r.Branches; i++ {
		skip := fmt.Sprintf("b%d", i)
		b.Test(isa.R0, isa.R0)
		b.Jne(skip)
		b.AddI(isa.R0, 1)
		b.Label(skip)
		b.Nop()
	}

	// Advance cursors, loop.
	b.AddI(isa.R5, 128)
	b.AndI(isa.R5, arraySize-129)
	b.SubI(isa.R9, 1)
	b.CmpI(isa.R9, 0)
	b.Jg("iter")
	b.I(isa.Inst{Op: isa.OpTrap})

	// Leaf functions with realistic bodies (a dozen instructions, so
	// the per-call CFI cost amortizes the way it does over real
	// functions).
	for i := 0; i < 2; i++ {
		b.Func(fmt.Sprintf("leaf%d", i))
		b.AddI(isa.R0, int32(i+1))
		b.MulI(isa.R0, 17)
		b.MovRR(isa.R3, isa.R0)
		b.ShrI(isa.R3, 7)
		b.Xor(isa.R0, isa.R3)
		b.MulI(isa.R0, 31)
		b.AddI(isa.R0, 0x1F3)
		b.MovRR(isa.R3, isa.R0)
		b.ShrI(isa.R3, 13)
		b.Xor(isa.R0, isa.R3)
		b.Ret()
	}
	return b.Finish()
}

// Run executes a linked kernel image on a bare MMDSFI domain and returns
// the retired instruction count. Instrumented and plain images run on the
// identical layout, so cycle ratios are directly comparable.
func Run(img *asm.Image) (uint64, error) {
	const base = 0x100000
	const domID = 1
	dSize := (img.MinDataSize() + 64<<10 + mem.PageSize - 1) / mem.PageSize * mem.PageSize
	m := mem.NewPaged(base, img.DataStart()+dSize+uint64(img.GuardSize))
	if err := m.Map(base, img.CodeSpan(), mem.PermRWX); err != nil {
		return 0, err
	}
	code := append([]byte(nil), img.Code...)
	for _, off := range isa.FindCFIMagic(code) {
		binary.LittleEndian.PutUint32(code[off+4:], domID)
	}
	if err := m.WriteDirect(base, code); err != nil {
		return 0, err
	}
	dBase := base + img.DataStart()
	if err := m.Map(dBase, dSize, mem.PermRW); err != nil {
		return 0, err
	}
	if err := m.WriteDirect(dBase, img.Data); err != nil {
		return 0, err
	}
	c := vm.New(m)
	c.PC = base + uint64(img.Entry)
	c.Regs[isa.SP] = dBase + dSize
	c.Bnd.Set(isa.BND0, mpx.Bound{Lower: dBase, Upper: dBase + dSize - 1})
	v := isa.CFILabelValue(domID)
	c.Bnd.Set(isa.BND1, mpx.Bound{Lower: v, Upper: v})

	st := c.Run(0)
	if st.Reason != vm.StopTrap {
		return 0, fmt.Errorf("specint: kernel stopped with %v", st)
	}
	return c.Cycles, nil
}

// Measure builds, links and runs a recipe under the given instrumentation
// options, returning retired cycles.
func Measure(r Recipe, iters int, opts mmdsfi.Options) (uint64, error) {
	prog, err := Build(r, iters)
	if err != nil {
		return 0, err
	}
	ip, err := mmdsfi.Instrument(prog, opts)
	if err != nil {
		return 0, err
	}
	img, err := asm.Link(ip)
	if err != nil {
		return 0, err
	}
	return Run(img)
}

// Overhead returns the relative slowdown of instrumented vs plain
// execution for a recipe: (instrumented − base) / base.
func Overhead(r Recipe, iters int, opts mmdsfi.Options) (float64, error) {
	base, err := Measure(r, iters, mmdsfi.Options{})
	if err != nil {
		return 0, err
	}
	instr, err := Measure(r, iters, opts)
	if err != nil {
		return 0, err
	}
	return float64(instr)/float64(base) - 1, nil
}
