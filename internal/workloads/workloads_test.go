package workloads

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// testKernels builds all three systems with test-sized parameters.
func testKernels(t *testing.T) []Kernel {
	t.Helper()
	ks, err := AllKernels(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	return ks
}

func TestFishPipelineAllSystems(t *testing.T) {
	const inputSize = 8 << 10
	var want []byte
	for _, k := range testKernels(t) {
		k := k
		t.Run(k.Name(), func(t *testing.T) {
			driver, err := InstallFish(k, inputSize)
			if err != nil {
				t.Fatal(err)
			}
			var out bytes.Buffer
			status, err := RunToCompletion(k, driver, nil, &out)
			if err != nil {
				t.Fatal(err)
			}
			if status != 0 {
				t.Fatalf("driver exit status = %d", status)
			}
			// The wc sink outputs the byte count that survived
			// od|grep|sort — 8 bytes.
			if out.Len() != 8 {
				t.Fatalf("pipeline output = %d bytes, want 8", out.Len())
			}
			count := binary.LittleEndian.Uint64(out.Bytes())
			if count == 0 || count > inputSize {
				t.Fatalf("wc count = %d", count)
			}
			if want == nil {
				want = append([]byte(nil), out.Bytes()...)
			} else if !bytes.Equal(want, out.Bytes()) {
				t.Fatalf("systems disagree: %x vs %x", want, out.Bytes())
			}
		})
	}
}

func TestGCCPipelineAllSystems(t *testing.T) {
	// Small stages for the test: the bench uses realistic sizes.
	stages := []GCCStage{
		{Path: "/bin/cpp", Work: 1, Pad: 4 << 10},
		{Path: "/bin/cc1", Work: 3, Pad: 64 << 10},
		{Path: "/bin/as", Work: 1, Pad: 4 << 10},
		{Path: "/bin/ld", Work: 1, Pad: 8 << 10},
	}
	var want []byte
	for _, k := range testKernels(t) {
		k := k
		t.Run(k.Name(), func(t *testing.T) {
			driver, err := InstallGCC(k, "hello", 2048, stages)
			if err != nil {
				t.Fatal(err)
			}
			var out bytes.Buffer
			status, err := RunToCompletion(k, driver, nil, &out)
			if err != nil {
				t.Fatal(err)
			}
			if status != 0 {
				t.Fatalf("driver exit status = %d", status)
			}
			if out.Len() != 2048 {
				t.Fatalf("compiled output = %d bytes, want 2048", out.Len())
			}
			if want == nil {
				want = append([]byte(nil), out.Bytes()...)
			} else if !bytes.Equal(want, out.Bytes()) {
				t.Fatal("systems produced different compilation output")
			}
		})
	}
}

func TestHTTPDAllSystems(t *testing.T) {
	const (
		port     = 8080
		workers  = 2
		requests = 16
	)
	for _, k := range testKernels(t) {
		k := k
		t.Run(k.Name(), func(t *testing.T) {
			master, err := InstallHTTPD(k, port, workers)
			if err != nil {
				t.Fatal(err)
			}
			p, err := k.Spawn(master, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			res := RunHTTPBench(k, port, 4, requests)
			StopHTTPD(k, port, workers)
			if status := p.Wait(); status != 0 {
				t.Fatalf("master status = %d", status)
			}
			if res.Failed != 0 {
				t.Fatalf("failed requests: %d/%d", res.Failed, res.Requests)
			}
			if res.Bytes != int64(requests*ResponseSize) {
				t.Fatalf("bytes = %d, want %d", res.Bytes, requests*ResponseSize)
			}
			t.Logf("%s: %.0f req/s", k.Name(), res.Throughput())
		})
	}
}

// TestHTTPDOversubscribed is the CI smoke for the M:N scheduler: the
// webserver workload with 4x more SIPs than harts (16 workers + master
// on a 4-hart pool). Every worker parked in accept must cost no hart,
// or the run deadlocks; the whole test runs under -race in CI.
func TestHTTPDOversubscribed(t *testing.T) {
	const (
		port     = 8090
		workers  = 16
		harts    = 4
		requests = 64
	)
	spec := DefaultSpec()
	spec.Domains = workers + 2 // master + margin
	spec.Harts = harts
	k, err := NewOcclumKernel(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer k.Sys.OS.Shutdown()
	if got := k.Sys.OS.Sched().NumHarts(); got != harts {
		t.Fatalf("hart pool = %d, want %d", got, harts)
	}

	master, err := InstallHTTPD(k, port, workers)
	if err != nil {
		t.Fatal(err)
	}
	p, err := k.Spawn(master, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := RunHTTPBench(k, port, 8, requests)
	StopHTTPD(k, port, workers)
	if status := p.Wait(); status != 0 {
		t.Fatalf("master status = %d", status)
	}
	if res.Failed != 0 {
		t.Fatalf("failed requests: %d/%d", res.Failed, res.Requests)
	}
	if res.Bytes != int64(requests*ResponseSize) {
		t.Fatalf("bytes = %d, want %d", res.Bytes, requests*ResponseSize)
	}
	snap := k.Sys.OS.Sched().Snapshot()
	if snap.Parks == 0 {
		t.Fatal("no parks: workers blocked in accept are holding harts")
	}
	t.Logf("%d SIPs / %d harts: %.0f req/s, %d parks, %d steals",
		workers+1, harts, res.Throughput(), snap.Parks, snap.Steals)
}
