package workloads

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hostos"
	"repro/internal/libos"
)

// SlowlorisSpec configures RunSlowloris.
type SlowlorisSpec struct {
	// Attackers is the number of slow connections: each dials, sends
	// only PartialBytes of a request, then stalls — never completing the
	// request, never reading, just occupying server-side state. This is
	// the slowloris shape: the damage is held resources, not bandwidth.
	Attackers int
	// PartialBytes of "GET / HTTP/1.0\r\n\r\n" each attacker sends
	// before stalling (0 = connect and say nothing).
	PartialBytes int
	// Hold bounds how long the generator waits for the server to reap
	// the stalled connections before closing the survivors itself.
	Hold time.Duration
	// Legit is the number of well-behaved clients running alongside the
	// attack; each performs LegitRounds requests and measures latency.
	// Legit clients tolerate shed/reaped connections by redialing —
	// the point is that service stays available and bounded, not that
	// no individual connection is ever refused under pressure.
	Legit, LegitRounds int
}

// SlowlorisResult reports the attack outcome.
type SlowlorisResult struct {
	// Connected counts attacker connections that completed a dial
	// (shedding may close them again immediately).
	Connected int
	// ServerClosed counts attacker connections the server terminated —
	// by the idle reaper or by accept-shedding — within Hold.
	ServerClosed int
	// AttackerBufPeak is the largest total of host-side buffered bytes
	// across all live attacker connections observed while they were
	// held: the per-connection memory the attack managed to pin.
	AttackerBufPeak int
	// LegitRequests/LegitFailed/LegitRetries count the well-behaved
	// side: a retry is a redial after a shed/reaped connection, a
	// failure is a request that never completed within its attempts.
	LegitRequests, LegitFailed, LegitRetries int
	// LegitP50/LegitP99 are per-request latency percentiles over the
	// successful legit requests (dial retries excluded: they measure
	// admission, not service).
	LegitP50, LegitP99 time.Duration
	// Net is the libos network-counter delta over the whole run: Reaps
	// and Sheds are the backpressure counters the attack is expected to
	// drive.
	Net libos.NetSnapshot
}

// RunSlowloris drives a slowloris-style attack against an HTTPD on
// port while measuring collateral damage to legitimate clients. The
// server is expected to defend itself with the libos backpressure
// knobs (IdleTimeout reaping the stalled connections, ShedThreshold
// refusing connections under run-queue saturation); the result carries
// the counter deltas so callers can assert the defenses actually
// engaged.
func RunSlowloris(k Kernel, port uint16, spec SlowlorisSpec) SlowlorisResult {
	net0 := libos.NetStats()
	var (
		res       SlowlorisResult
		mu        sync.Mutex // guards res counters and lats
		lats      []time.Duration
		wg        sync.WaitGroup
		stopPeak  = make(chan struct{})
		attackers = make([]*hostos.Conn, spec.Attackers)
		amu       sync.Mutex // guards attackers slice slots
	)
	partial := []byte("GET / HTTP/1.0\r\n\r\n")[:min(spec.PartialBytes, 18)]

	// Attackers: dial (with retry — shed connections die after accept,
	// so the dial itself usually succeeds), send the partial request,
	// then block in Read. The server closing the connection — reap or
	// shed — surfaces as the Read returning, which is how ServerClosed
	// is counted without polling.
	var serverClosed atomic.Int64
	var connected atomic.Int64
	for i := 0; i < spec.Attackers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := dialConnRetry(k, port, 10*time.Second)
			if err != nil {
				return
			}
			connected.Add(1)
			amu.Lock()
			attackers[i] = conn
			amu.Unlock()
			if len(partial) > 0 {
				if _, err := conn.Write(partial); err != nil {
					serverClosed.Add(1)
					return
				}
			}
			// Stall. The only way out is the server hanging up.
			buf := make([]byte, 64)
			for {
				if _, err := conn.Read(buf); err != nil {
					serverClosed.Add(1)
					amu.Lock()
					attackers[i] = nil
					amu.Unlock()
					return
				}
			}
		}(i)
	}

	// Peak sampler: the held memory is what slowloris is about, so
	// sample the total buffered bytes across live attacker connections
	// while the attack runs.
	var peakWG sync.WaitGroup
	peakWG.Add(1)
	go func() {
		defer peakWG.Done()
		for {
			select {
			case <-stopPeak:
				return
			case <-time.After(5 * time.Millisecond):
			}
			total := 0
			amu.Lock()
			for _, c := range attackers {
				if c != nil {
					total += c.BufAlloc()
				}
			}
			amu.Unlock()
			mu.Lock()
			if total > res.AttackerBufPeak {
				res.AttackerBufPeak = total
			}
			mu.Unlock()
		}
	}()

	// Legit clients, concurrent with the attack.
	var legitWG sync.WaitGroup
	var failed, retries atomic.Int64
	for i := 0; i < spec.Legit; i++ {
		legitWG.Add(1)
		go func() {
			defer legitWG.Done()
			var conn *hostos.Conn
			buf := make([]byte, 4096)
			myLats := make([]time.Duration, 0, spec.LegitRounds)
			for r := 0; r < spec.LegitRounds; r++ {
				ok := false
				for attempt := 0; attempt < 8 && !ok; attempt++ {
					if attempt > 0 {
						retries.Add(1)
					}
					if conn == nil {
						var err error
						conn, err = dialConnRetry(k, port, 10*time.Second)
						if err != nil {
							continue
						}
					}
					t0 := time.Now()
					if _, err := conn.Write([]byte("GET / HTTP/1.0\r\n\r\n")); err != nil {
						conn.Close()
						conn = nil
						continue
					}
					got := 0
					for got < ResponseSize {
						n, err := conn.Read(buf)
						got += n
						if err != nil {
							break
						}
					}
					if got < ResponseSize {
						conn.Close()
						conn = nil
						continue
					}
					myLats = append(myLats, time.Since(t0))
					ok = true
				}
				if !ok {
					failed.Add(1)
				}
			}
			if conn != nil {
				conn.Close()
			}
			mu.Lock()
			lats = append(lats, myLats...)
			mu.Unlock()
		}()
	}
	legitWG.Wait()

	// Give the reaper until Hold to clear the stalled connections, then
	// cut down the survivors ourselves so the attacker goroutines exit.
	deadline := time.Now().Add(spec.Hold)
	for time.Now().Before(deadline) &&
		int(serverClosed.Load()) < int(connected.Load()) {
		time.Sleep(5 * time.Millisecond)
	}
	close(stopPeak)
	peakWG.Wait()
	res.ServerClosed = int(serverClosed.Load())
	amu.Lock()
	for i, c := range attackers {
		if c != nil {
			c.Close()
			attackers[i] = nil
		}
	}
	amu.Unlock()
	wg.Wait()

	res.Connected = int(connected.Load())
	res.LegitRequests = spec.Legit * spec.LegitRounds
	res.LegitFailed = int(failed.Load())
	res.LegitRetries = int(retries.Load())
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if len(lats) > 0 {
		res.LegitP50 = lats[int(0.50*float64(len(lats)-1))]
		res.LegitP99 = lats[int(0.99*float64(len(lats)-1))]
	}
	res.Net = libos.NetStats().Sub(net0)
	return res
}
