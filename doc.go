// Package repro is a from-scratch Go reproduction of "Occlum: Secure and
// Efficient Multitasking Inside a Single Enclave of Intel SGX" (Shen,
// Tian et al., ASPLOS 2020).
//
// The system under internal/ comprises the paper's three components — the
// MMDSFI toolchain, the independent binary verifier, and the Occlum LibOS
// — together with every substrate they need (a synthetic ISA and virtual
// CPU, an SGX 1.0 enclave model with MPX bound registers, an encrypted
// filesystem, an untrusted host OS) and both evaluation baselines (native
// Linux and a Graphene-SGX-like enclave-per-process LibOS).
//
// See README.md for the tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate every figure of the paper's §9.
package repro
